//! Source spans and compiler diagnostics.

use std::fmt;

/// A byte range in the original source text, used to locate diagnostics.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct Span {
    pub start: u32,
    pub end: u32,
}

impl Span {
    pub fn new(start: u32, end: u32) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// 1-based (line, column) of the span start within `src`. Columns are
    /// counted in *characters*, not bytes, so diagnostics on lines
    /// containing multi-byte UTF-8 (e.g. `∞` in comments) point at the
    /// right column.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let mut start = (self.start as usize).min(src.len());
        // Never split a multi-byte character.
        while start > 0 && !src.is_char_boundary(start) {
            start -= 1;
        }
        let upto = &src[..start];
        let line = upto.bytes().filter(|&b| b == b'\n').count() + 1;
        let line_start = upto.rfind('\n').map(|i| i + 1).unwrap_or(0);
        let col = upto[line_start..].chars().count() + 1;
        (line, col)
    }
}

/// The stage of the front end that produced an [`Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    Lex,
    Parse,
    Check,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stage::Lex => write!(f, "lex"),
            Stage::Parse => write!(f, "parse"),
            Stage::Check => write!(f, "check"),
        }
    }
}

/// A front-end diagnostic with a message and source location.
#[derive(Debug, Clone)]
pub struct Error {
    pub stage: Stage,
    pub msg: String,
    pub span: Span,
}

impl Error {
    pub fn new(stage: Stage, msg: impl Into<String>, span: Span) -> Self {
        Error {
            stage,
            msg: msg.into(),
            span,
        }
    }

    /// Render with line/column resolved against the source text.
    pub fn render(&self, src: &str) -> String {
        let (line, col) = self.span.line_col(src);
        format!("{} error at {}:{}: {}", self.stage, line, col, self.msg)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} error at bytes {}..{}: {}",
            self.stage, self.span.start, self.span.end, self.msg
        )
    }
}

impl std::error::Error for Error {}

/// How serious a [`Diagnostic`] is. Errors abort compilation; warnings
/// accumulate and are reported together (lint passes emit warnings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes. The `FSR-Wxxx` identifiers are part of the
/// tool's external interface (golden lint reports, CI filters); never
/// renumber an existing code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize)]
pub enum Code {
    /// Two processes may access the same location in the same phase, at
    /// least one writing, with no common lock held.
    UnsynchronizedWriteShare,
    /// Conflicting accesses are lock-guarded on some paths but not all,
    /// or guarded by provably different lock elements.
    LockNotHeldOnAllPaths,
    /// The two arms of a branch cross different numbers of barriers, so
    /// processes taking different arms rendezvous at different points.
    BarrierCountMismatch,
    /// The object's layout makes cross-process false sharing likely; the
    /// message names the recommended compile-time transformation
    /// (group/transpose, pad, align, or indirection).
    FalseSharingProne,
}

impl Code {
    /// The stable `FSR-Wxxx` identifier.
    pub fn id(&self) -> &'static str {
        match self {
            Code::UnsynchronizedWriteShare => "FSR-W001",
            Code::LockNotHeldOnAllPaths => "FSR-W002",
            Code::BarrierCountMismatch => "FSR-W003",
            Code::FalseSharingProne => "FSR-W004",
        }
    }

    /// Human-readable slug, as shown next to the id.
    pub fn slug(&self) -> &'static str {
        match self {
            Code::UnsynchronizedWriteShare => "unsynchronized-write-share",
            Code::LockNotHeldOnAllPaths => "lock-not-held-on-all-paths",
            Code::BarrierCountMismatch => "barrier-count-mismatch",
            Code::FalseSharingProne => "false-sharing-prone",
        }
    }

    pub fn severity(&self) -> Severity {
        Severity::Warning
    }

    pub const ALL: [Code; 4] = [
        Code::UnsynchronizedWriteShare,
        Code::LockNotHeldOnAllPaths,
        Code::BarrierCountMismatch,
        Code::FalseSharingProne,
    ];
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.id(), self.slug())
    }
}

/// One warning- or error-severity finding with an optional stable code
/// and related source locations (e.g. "the conflicting access is here").
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub severity: Severity,
    pub code: Option<Code>,
    pub msg: String,
    pub span: Span,
    /// Secondary locations with their own captions.
    pub related: Vec<(Span, String)>,
}

impl Diagnostic {
    pub fn warning(code: Code, msg: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: code.severity(),
            code: Some(code),
            msg: msg.into(),
            span,
            related: Vec::new(),
        }
    }

    pub fn with_related(mut self, span: Span, caption: impl Into<String>) -> Diagnostic {
        self.related.push((span, caption.into()));
        self
    }

    /// Render with line/column resolved against the source text.
    pub fn render(&self, src: &str) -> String {
        let (line, col) = self.span.line_col(src);
        let mut out = match self.code {
            Some(c) => format!("{}[{}] at {line}:{col}: {}", self.severity, c, self.msg),
            None => format!("{} at {line}:{col}: {}", self.severity, self.msg),
        };
        for (span, caption) in &self.related {
            let (l, c) = span.line_col(src);
            out.push_str(&format!("\n  note at {l}:{c}: {caption}"));
        }
        out
    }
}

/// Escape `s` for embedding in a JSON string literal. Control
/// characters use `\u` escapes; everything else (including multi-byte
/// UTF-8) passes through verbatim.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl Diagnostic {
    /// Stable machine-readable rendering, one JSON object per
    /// diagnostic. The schema is part of the tool's external interface
    /// (the `fsr-serve` wire protocol and CI filters consume it):
    ///
    /// ```json
    /// {"severity": "warning", "code": "FSR-W001",
    ///  "slug": "unsynchronized-write-share",
    ///  "span": {"start": 4, "end": 5}, "line": 2, "col": 2,
    ///  "msg": "...", "related": [
    ///    {"span": {"start": 0, "end": 1}, "line": 1, "col": 1,
    ///     "caption": "..."}]}
    /// ```
    ///
    /// `code`/`slug` are `null` for uncoded (front-end) errors. `line`
    /// and `col` are 1-based and column counts *characters*, not bytes,
    /// so clients need no UTF-8 handling of their own. Key order is
    /// fixed; never reorder or rename existing keys.
    ///
    /// Lint reports (`fsr-lint --json`, the `fsr-serve` `lint` method)
    /// wrap these objects per workload together with the race pass's
    /// suppression accounting:
    ///
    /// ```json
    /// {"workload": "...", "diagnostics": [...],
    ///  "suppressed_pairs": 2, "suppressed": [
    ///    {"object": "grid", "reason": "index is data-dependent ..."}]}
    /// ```
    ///
    /// `suppressed` lists each `(object, field)` access group whose
    /// conflicting pairs were all suppressed, with a human-readable
    /// reason derived from the relational index domain; `"object"` uses
    /// the same `name` / `name.field` labels as diagnostic messages.
    /// The list is sorted by object label. Per the append-only wire
    /// policy, new keys may be added but existing ones never change
    /// meaning.
    pub fn to_json(&self, src: &str) -> String {
        let (line, col) = self.span.line_col(src);
        let (code, slug) = match self.code {
            Some(c) => (format!("\"{}\"", c.id()), format!("\"{}\"", c.slug())),
            None => ("null".to_string(), "null".to_string()),
        };
        let related: Vec<String> = self
            .related
            .iter()
            .map(|(span, caption)| {
                let (l, c) = span.line_col(src);
                format!(
                    "{{\"span\": {{\"start\": {}, \"end\": {}}}, \
                     \"line\": {l}, \"col\": {c}, \"caption\": \"{}\"}}",
                    span.start,
                    span.end,
                    json_escape(caption)
                )
            })
            .collect();
        format!(
            "{{\"severity\": \"{}\", \"code\": {code}, \"slug\": {slug}, \
             \"span\": {{\"start\": {}, \"end\": {}}}, \
             \"line\": {line}, \"col\": {col}, \"msg\": \"{}\", \
             \"related\": [{}]}}",
            self.severity,
            self.span.start,
            self.span.end,
            json_escape(&self.msg),
            related.join(", ")
        )
    }
}

impl From<Error> for Diagnostic {
    fn from(e: Error) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code: None,
            msg: format!("{} error: {}", e.stage, e.msg),
            span: e.span,
            related: Vec::new(),
        }
    }
}

/// A multi-diagnostic collection: unlike the front end's fail-fast
/// [`Error`], analyses that can produce several independent findings
/// accumulate them here and report them all at once.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    pub list: Vec<Diagnostic>,
}

impl Diagnostics {
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    pub fn push(&mut self, d: Diagnostic) {
        self.list.push(d);
    }

    pub fn extend(&mut self, it: impl IntoIterator<Item = Diagnostic>) {
        self.list.extend(it);
    }

    pub fn is_clean(&self) -> bool {
        self.list.is_empty()
    }

    pub fn len(&self) -> usize {
        self.list.len()
    }

    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    pub fn max_severity(&self) -> Option<Severity> {
        self.list.iter().map(|d| d.severity).max()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Diagnostic> {
        self.list.iter()
    }

    /// Count of diagnostics carrying `code`.
    pub fn count_of(&self, code: Code) -> usize {
        self.list.iter().filter(|d| d.code == Some(code)).count()
    }

    /// Fully deterministic report order: source position, then severity,
    /// then code, then message. The message tiebreak means emission
    /// order never depends on analysis iteration order, so goldens stay
    /// byte-stable even for co-located same-code findings.
    pub fn sort(&mut self) {
        self.list.sort_by(|a, b| {
            (a.span, a.severity, a.code, &a.msg).cmp(&(b.span, b.severity, b.code, &b.msg))
        });
    }

    /// Render every diagnostic against the source, one per line.
    pub fn render_all(&self, src: &str) -> String {
        self.list
            .iter()
            .map(|d| d.render(src))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// All diagnostics as a JSON array (see [`Diagnostic::to_json`]).
    pub fn to_json(&self, src: &str) -> String {
        let items: Vec<String> = self.list.iter().map(|d| d.to_json(src)).collect();
        format!("[{}]", items.join(", "))
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.list.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
    }

    #[test]
    fn line_col_resolution() {
        let src = "ab\ncd\nef";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(4, 5).line_col(src), (2, 2));
        assert_eq!(Span::new(6, 7).line_col(src), (3, 1));
    }

    #[test]
    fn error_render_mentions_stage_and_position() {
        let e = Error::new(Stage::Parse, "expected `;`", Span::new(4, 5));
        let s = e.render("ab\ncd\nef");
        assert!(s.contains("parse error"));
        assert!(s.contains("2:2"));
        assert!(s.contains("expected `;`"));
    }

    #[test]
    fn line_col_counts_chars_not_bytes() {
        // `∞` is 3 bytes but 1 character; `x` after it starts at byte 7
        // of its line but must report column 5.
        let src = "ab\n// ∞x\ncd";
        let x_byte = src.find('x').unwrap() as u32;
        let span = Span::new(x_byte, x_byte + 1);
        assert_eq!(span.line_col(src), (2, 5));
        // A span landing mid-character must not panic and snaps to it.
        let inf_byte = src.find('∞').unwrap() as u32;
        let mid = Span::new(inf_byte + 1, inf_byte + 2);
        assert_eq!(mid.line_col(src), (2, 4));
    }

    #[test]
    fn codes_are_stable() {
        assert_eq!(Code::UnsynchronizedWriteShare.id(), "FSR-W001");
        assert_eq!(Code::LockNotHeldOnAllPaths.id(), "FSR-W002");
        assert_eq!(Code::BarrierCountMismatch.id(), "FSR-W003");
        assert_eq!(Code::FalseSharingProne.id(), "FSR-W004");
        assert_eq!(
            Code::UnsynchronizedWriteShare.slug(),
            "unsynchronized-write-share"
        );
        assert_eq!(Code::FalseSharingProne.slug(), "false-sharing-prone");
        assert_eq!(Code::ALL.len(), 4);
    }

    #[test]
    fn sort_breaks_ties_on_message() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::warning(
            Code::UnsynchronizedWriteShare,
            "zebra",
            Span::new(2, 3),
        ));
        ds.push(Diagnostic::warning(
            Code::UnsynchronizedWriteShare,
            "aardvark",
            Span::new(2, 3),
        ));
        ds.sort();
        assert_eq!(ds.list[0].msg, "aardvark");
        assert_eq!(ds.list[1].msg, "zebra");
    }

    #[test]
    fn diagnostic_render_includes_code_and_related() {
        let d = Diagnostic::warning(
            Code::UnsynchronizedWriteShare,
            "`hot` written by all processes without a lock",
            Span::new(4, 5),
        )
        .with_related(Span::new(0, 1), "conflicting write here");
        let s = d.render("ab\ncd\nef");
        assert!(s.contains("warning[FSR-W001 unsynchronized-write-share]"));
        assert!(s.contains("2:2"));
        assert!(s.contains("note at 1:1: conflicting write here"));
    }

    #[test]
    fn diagnostic_json_schema_is_stable() {
        let src = "ab\ncd\nef";
        let d = Diagnostic::warning(
            Code::UnsynchronizedWriteShare,
            "`hot` written without a lock",
            Span::new(4, 5),
        )
        .with_related(Span::new(0, 1), "conflicting write here");
        assert_eq!(
            d.to_json(src),
            "{\"severity\": \"warning\", \"code\": \"FSR-W001\", \
             \"slug\": \"unsynchronized-write-share\", \
             \"span\": {\"start\": 4, \"end\": 5}, \"line\": 2, \"col\": 2, \
             \"msg\": \"`hot` written without a lock\", \
             \"related\": [{\"span\": {\"start\": 0, \"end\": 1}, \
             \"line\": 1, \"col\": 1, \"caption\": \"conflicting write here\"}]}"
        );
        // Uncoded front-end errors serialize code/slug as null.
        let e = Diagnostic::from(Error::new(Stage::Check, "boom", Span::new(0, 1)));
        let j = e.to_json(src);
        assert!(j.contains("\"severity\": \"error\""), "{j}");
        assert!(j.contains("\"code\": null, \"slug\": null"), "{j}");
        assert!(j.contains("\"related\": []"), "{j}");
    }

    #[test]
    fn diagnostic_json_line_col_counts_chars_on_multibyte_sources() {
        // `∞` is 3 bytes but one character: the `x` after it sits at
        // byte 7 of its line, but the wire schema must report col 5 —
        // clients index by character, not byte.
        let src = "ab\n// ∞x\ncd";
        let x_byte = src.find('x').unwrap() as u32;
        let d = Diagnostic::warning(
            Code::BarrierCountMismatch,
            "arms cross different barrier counts — see ∞ note",
            Span::new(x_byte, x_byte + 1),
        );
        let j = d.to_json(src);
        assert!(j.contains("\"line\": 2, \"col\": 5"), "{j}");
        // Multi-byte characters in the message pass through unescaped
        // (JSON strings are UTF-8); quotes and control chars don't.
        assert!(j.contains("∞ note"), "{j}");
        let tricky = Diagnostic::warning(
            Code::BarrierCountMismatch,
            "say \"hi\"\n\tdone\u{1}",
            Span::new(0, 1),
        );
        let tj = tricky.to_json(src);
        assert!(tj.contains("say \\\"hi\\\"\\n\\tdone\\u0001"), "{tj}");
    }

    #[test]
    fn diagnostics_json_is_an_array() {
        let src = "ab\ncd";
        let mut ds = Diagnostics::new();
        assert_eq!(ds.to_json(src), "[]");
        ds.push(Diagnostic::warning(
            Code::UnsynchronizedWriteShare,
            "one",
            Span::new(0, 1),
        ));
        ds.push(Diagnostic::warning(
            Code::LockNotHeldOnAllPaths,
            "two",
            Span::new(3, 4),
        ));
        let j = ds.to_json(src);
        assert!(j.starts_with("[{") && j.ends_with("}]"), "{j}");
        assert_eq!(j.matches("\"severity\"").count(), 2, "{j}");
    }

    #[test]
    fn diagnostics_collects_and_sorts() {
        let mut ds = Diagnostics::new();
        assert!(ds.is_clean());
        ds.push(Diagnostic::warning(
            Code::BarrierCountMismatch,
            "later",
            Span::new(9, 10),
        ));
        ds.push(Diagnostic::warning(
            Code::UnsynchronizedWriteShare,
            "earlier",
            Span::new(2, 3),
        ));
        ds.push(Diagnostic::from(Error::new(
            Stage::Check,
            "boom",
            Span::new(5, 6),
        )));
        ds.sort();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.max_severity(), Some(Severity::Error));
        assert_eq!(ds.count_of(Code::UnsynchronizedWriteShare), 1);
        let spans: Vec<u32> = ds.list.iter().map(|d| d.span.start).collect();
        assert_eq!(spans, vec![2, 5, 9]);
        assert!(ds.list[1].msg.contains("check error"));
    }
}
