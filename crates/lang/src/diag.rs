//! Source spans and compiler diagnostics.

use std::fmt;

/// A byte range in the original source text, used to locate diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct Span {
    pub start: u32,
    pub end: u32,
}

impl Span {
    pub fn new(start: u32, end: u32) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// 1-based (line, column) of the span start within `src`.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let upto = &src[..(self.start as usize).min(src.len())];
        let line = upto.bytes().filter(|&b| b == b'\n').count() + 1;
        let col = upto.len() - upto.rfind('\n').map(|i| i + 1).unwrap_or(0) + 1;
        (line, col)
    }
}

/// The stage of the front end that produced an [`Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    Lex,
    Parse,
    Check,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stage::Lex => write!(f, "lex"),
            Stage::Parse => write!(f, "parse"),
            Stage::Check => write!(f, "check"),
        }
    }
}

/// A front-end diagnostic with a message and source location.
#[derive(Debug, Clone)]
pub struct Error {
    pub stage: Stage,
    pub msg: String,
    pub span: Span,
}

impl Error {
    pub fn new(stage: Stage, msg: impl Into<String>, span: Span) -> Self {
        Error {
            stage,
            msg: msg.into(),
            span,
        }
    }

    /// Render with line/column resolved against the source text.
    pub fn render(&self, src: &str) -> String {
        let (line, col) = self.span.line_col(src);
        format!("{} error at {}:{}: {}", self.stage, line, col, self.msg)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} error at bytes {}..{}: {}",
            self.stage, self.span.start, self.span.end, self.msg
        )
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
    }

    #[test]
    fn line_col_resolution() {
        let src = "ab\ncd\nef";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(4, 5).line_col(src), (2, 2));
        assert_eq!(Span::new(6, 7).line_col(src), (3, 1));
    }

    #[test]
    fn error_render_mentions_stage_and_position() {
        let e = Error::new(Stage::Parse, "expected `;`", Span::new(4, 5));
        let s = e.render("ab\ncd\nef");
        assert!(s.contains("parse error"));
        assert!(s.contains("2:2"));
        assert!(s.contains("expected `;`"));
    }
}
