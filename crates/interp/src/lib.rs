//! SPMD bytecode interpreter for PSL: executes a checked program under a
//! memory [`Layout`](fsr_layout::Layout), emitting the interleaved
//! shared-memory reference trace that drives the cache simulator.
//!
//! The interpreter plays the role of the paper's inline tracing tool
//! [EKKL90]: processes execute round-robin, one instruction per round;
//! every load/store of a global object (including lock words, indirection
//! pointers and spin rereads of contended locks) becomes a trace event.
//!
//! # Example
//! ```
//! use fsr_interp::{compile_program, run, RunConfig, VecSink};
//!
//! let src = "param NPROC = 2; shared int c[NPROC];
//!            fn main() { forall p in 0 .. NPROC { c[p] = c[p] + 1; } }";
//! let prog = fsr_lang::compile(src).unwrap();
//! let plan = fsr_transform::LayoutPlan::unoptimized(64);
//! let layout = fsr_layout::Layout::build(&prog, &plan, 2);
//! let code = compile_program(&prog).unwrap();
//! let mut sink = VecSink::default();
//! let fin = run(&prog, &layout, &code, RunConfig::default(), &mut sink).unwrap();
//! assert!(fin.stats.refs > 0);
//! ```

pub mod bytecode;
pub mod compile;
pub mod hb;
pub mod vm;

pub use bytecode::{Compiled, Instr};
pub use compile::compile_program;
pub use hb::HbChecker;
pub use vm::{
    runs_started, CountingSink, FinalState, Interp, MemRef, RecordedTrace, RoundRobin, RunConfig,
    RunStats, RuntimeError, Schedule, Scheduler, Slot, TeeSink, TraceEvent, TraceSink, VecSink,
    WorkSteal,
};

use fsr_lang::ast::Program;
use fsr_layout::Layout;

/// Compile-and-run convenience wrapper.
pub fn run(
    prog: &Program,
    layout: &Layout,
    code: &Compiled,
    cfg: RunConfig,
    sink: &mut dyn TraceSink,
) -> Result<FinalState, RuntimeError> {
    Interp::new(prog, layout, code, cfg).run(sink)
}

#[cfg(test)]
mod tests;
