//! Interpreter behaviour tests: semantics, synchronization, trace
//! content, error handling, and the layout-independence property.

use crate::*;
use fsr_transform::LayoutPlan;

fn exec(src: &str, nproc: u32) -> (fsr_lang::Program, fsr_layout::Layout, FinalState, VecSink) {
    let prog = fsr_lang::compile(src).unwrap();
    let plan = LayoutPlan::unoptimized(64);
    let layout = fsr_layout::Layout::build(&prog, &plan, nproc);
    let code = compile_program(&prog).unwrap();
    let mut sink = VecSink::default();
    let fin = run(&prog, &layout, &code, RunConfig::default(), &mut sink).unwrap();
    (prog, layout, fin, sink)
}

fn value_of(
    prog: &fsr_lang::Program,
    layout: &fsr_layout::Layout,
    fin: &FinalState,
    name: &str,
    flat: u64,
) -> i32 {
    let (oid, _) = prog.object_by_name(name).unwrap();
    match layout.resolve(oid, flat, None, 0) {
        fsr_layout::Resolved::Direct(a) => fin.mem[a as usize],
        fsr_layout::Resolved::Indirect { ptr, off, .. } => {
            let t = fin.mem[ptr as usize];
            if t == 0 {
                0
            } else {
                fin.mem[(t as u32 + off) as usize]
            }
        }
    }
}

#[test]
fn per_proc_increments_land() {
    let (p, l, fin, _) = exec(
        "param NPROC = 4; shared int c[NPROC];
         fn main() { forall p in 0 .. NPROC { var i;
             for i in 0 .. 10 { c[p] = c[p] + 1; } } }",
        4,
    );
    for e in 0..4 {
        assert_eq!(value_of(&p, &l, &fin, "c", e), 10);
    }
}

#[test]
fn serial_prologue_runs_once() {
    let (p, l, fin, _) = exec(
        "param NPROC = 4; shared int a[8];
         fn main() {
             var i;
             for i in 0 .. 8 { a[i] = i * 2; }
             forall p in 0 .. NPROC { }
         }",
        4,
    );
    for e in 0..8 {
        assert_eq!(value_of(&p, &l, &fin, "a", e), (e * 2) as i32);
    }
}

#[test]
fn locks_serialize_increments() {
    let (p, l, fin, _) = exec(
        "param NPROC = 4; shared lock lk; shared int total;
         fn main() { forall p in 0 .. NPROC { var i;
             for i in 0 .. 25 {
                 lock(lk); total = total + 1; unlock(lk);
             } } }",
        4,
    );
    assert_eq!(value_of(&p, &l, &fin, "total", 0), 100);
}

#[test]
fn barrier_orders_phases() {
    // Each proc writes its slot; after the barrier everyone reads the
    // sum — correct only if the barrier actually synchronizes.
    let (p, l, fin, _) = exec(
        "param NPROC = 4; shared int v[NPROC]; shared int sums[NPROC];
         fn main() { forall p in 0 .. NPROC {
             v[p] = p + 1;
             barrier;
             var i; var s = 0;
             for i in 0 .. NPROC { s = s + v[i]; }
             sums[p] = s;
         } }",
        4,
    );
    for e in 0..4 {
        assert_eq!(value_of(&p, &l, &fin, "sums", e), 10);
    }
}

#[test]
fn fork_copies_master_locals() {
    let (p, l, fin, _) = exec(
        "param NPROC = 3; shared int out[NPROC];
         fn main() {
             var base = 100;
             forall p in 0 .. NPROC { out[p] = base + p; }
         }",
        3,
    );
    for e in 0..3 {
        assert_eq!(value_of(&p, &l, &fin, "out", e), 100 + e as i32);
    }
}

#[test]
fn functions_and_returns() {
    let (p, l, fin, _) = exec(
        "param NPROC = 2; shared int out[NPROC];
         fn fib(int n) {
             var a = 0; var b = 1; var i;
             for i in 0 .. n { var t = a + b; a = b; b = t; }
             return a;
         }
         fn main() { forall p in 0 .. NPROC { out[p] = fib(10 + p); } }",
        2,
    );
    assert_eq!(value_of(&p, &l, &fin, "out", 0), 55);
    assert_eq!(value_of(&p, &l, &fin, "out", 1), 89);
}

#[test]
fn struct_fields_roundtrip() {
    let (p, l, fin, _) = exec(
        "param NPROC = 2; struct N { int a; int b[2]; } shared N ns[4];
         fn main() { forall p in 0 .. NPROC {
             ns[p].a = p + 1;
             ns[p].b[0] = 10 * (p + 1);
             ns[p].b[1] = ns[p].b[0] + ns[p].a;
         } }",
        2,
    );
    let (oid, _) = p.object_by_name("ns").unwrap();
    let get = |e: u64, f: u32, fi: u32| {
        let r = l.resolve(oid, e, Some((fsr_lang::ast::FieldId(f), fi)), 0);
        match r {
            fsr_layout::Resolved::Direct(a) => fin.mem[a as usize],
            _ => panic!(),
        }
    };
    assert_eq!(get(1, 0, 0), 2);
    assert_eq!(get(1, 1, 0), 20);
    assert_eq!(get(1, 1, 1), 22);
}

#[test]
fn private_arrays_are_independent() {
    let (p, l, fin, _) = exec(
        "param NPROC = 3; private int t[4]; shared int out[NPROC];
         fn main() { forall p in 0 .. NPROC {
             t[0] = p * 7;
             barrier;
             out[p] = t[0];
         } }",
        3,
    );
    for e in 0..3 {
        assert_eq!(value_of(&p, &l, &fin, "out", e), (e * 7) as i32);
    }
}

#[test]
fn prand_is_deterministic_and_nonnegative() {
    let (p, l, fin, _) = exec(
        "param NPROC = 2; shared int out[NPROC]; shared int chk[NPROC];
         fn main() { forall p in 0 .. NPROC {
             out[p] = prand(p) % 100;
             chk[p] = prand(p) % 100;
         } }",
        2,
    );
    for e in 0..2 {
        let a = value_of(&p, &l, &fin, "out", e);
        let b = value_of(&p, &l, &fin, "chk", e);
        assert_eq!(a, b);
        assert!(a >= 0);
    }
}

#[test]
fn trace_contains_lock_traffic() {
    let prog = fsr_lang::compile(
        "param NPROC = 4; shared lock lk; shared int x;
         fn main() { forall p in 0 .. NPROC { var i;
             for i in 0 .. 10 { lock(lk); x = x + 1; unlock(lk); } } }",
    )
    .unwrap();
    let plan = LayoutPlan::unoptimized(64);
    let layout = fsr_layout::Layout::build(&prog, &plan, 4);
    let code = compile_program(&prog).unwrap();
    let mut sink = VecSink::default();
    // Probe every round so the contention is visible in the trace.
    let cfg = RunConfig {
        spin_probe_period: 1,
        ..Default::default()
    };
    let fin = run(&prog, &layout, &code, cfg, &mut sink).unwrap();
    assert!(fin.stats.lock_acquires >= 40);
    assert!(fin.stats.spin_rereads > 0, "contended locks must spin");
    assert!(!sink.0.is_empty());
}

#[test]
fn gaps_count_compute_between_refs() {
    let (_, _, _, sink) = exec(
        "param NPROC = 1; shared int a;
         fn main() { forall p in 0 .. 1 {
             var x = 1 + 2 + 3 + 4;
             a = x;
         } }",
        1,
    );
    // The store to `a` must carry a nonzero gap (the arithmetic).
    let st = sink.0.iter().find(|r| r.write).unwrap();
    assert!(st.gap > 2);
}

#[test]
fn out_of_bounds_is_runtime_error() {
    let prog = fsr_lang::compile(
        "param NPROC = 2; shared int a[4];
         fn main() { forall p in 0 .. NPROC { a[p + 4] = 1; } }",
    )
    .unwrap();
    let plan = LayoutPlan::unoptimized(64);
    let layout = fsr_layout::Layout::build(&prog, &plan, 2);
    let code = compile_program(&prog).unwrap();
    let mut sink = VecSink::default();
    let err = run(&prog, &layout, &code, RunConfig::default(), &mut sink).unwrap_err();
    assert!(err.msg.contains("out of bounds"), "{}", err.msg);
}

#[test]
fn division_by_zero_is_runtime_error() {
    let prog = fsr_lang::compile(
        "param NPROC = 1; shared int a;
         fn main() { forall p in 0 .. 1 { a = 1 / p; } }",
    )
    .unwrap();
    let plan = LayoutPlan::unoptimized(64);
    let layout = fsr_layout::Layout::build(&prog, &plan, 1);
    let code = compile_program(&prog).unwrap();
    let err = run(
        &prog,
        &layout,
        &code,
        RunConfig::default(),
        &mut VecSink::default(),
    )
    .unwrap_err();
    assert!(err.msg.contains("division"));
}

#[test]
fn step_limit_catches_infinite_loops() {
    let prog = fsr_lang::compile(
        "param NPROC = 1; shared int a;
         fn main() { forall p in 0 .. 1 { while (1) { a = a + 1; } } }",
    )
    .unwrap();
    let plan = LayoutPlan::unoptimized(64);
    let layout = fsr_layout::Layout::build(&prog, &plan, 1);
    let code = compile_program(&prog).unwrap();
    let cfg = RunConfig {
        max_steps: 10_000,
        ..Default::default()
    };
    let err = run(&prog, &layout, &code, cfg, &mut VecSink::default()).unwrap_err();
    assert!(err.msg.contains("step limit"));
}

#[test]
fn semantics_identical_across_plans() {
    // The core property: final logical memory is independent of the
    // layout plan (here: unoptimized vs compiler plan).
    let src = "param NPROC = 4; shared int c[NPROC]; shared lock lk;
         shared int total; shared int hist[16][NPROC];
         fn main() { forall p in 0 .. NPROC { var i;
             for i in 0 .. 32 {
                 c[p] = c[p] + 1;
                 hist[i % 16][p] = hist[i % 16][p] + p;
                 lock(lk); total = total + 1; unlock(lk);
             }
         } }";
    let prog = fsr_lang::compile(src).unwrap();
    let code = compile_program(&prog).unwrap();

    let base_plan = LayoutPlan::unoptimized(64);
    let base_layout = fsr_layout::Layout::build(&prog, &base_plan, 4);
    let base = run(
        &prog,
        &base_layout,
        &code,
        RunConfig::default(),
        &mut CountingSink::default(),
    )
    .unwrap();

    let analysis = fsr_analysis::analyze(&prog).unwrap();
    let plan =
        fsr_transform::plan_for(&prog, &analysis, &fsr_transform::PlanConfig::with_block(64));
    assert!(!plan.is_empty());
    let opt_layout = fsr_layout::Layout::build(&prog, &plan, 4);
    let opt = run(
        &prog,
        &opt_layout,
        &code,
        RunConfig::default(),
        &mut CountingSink::default(),
    )
    .unwrap();

    assert_eq!(
        base.logical_snapshot(&prog, &base_layout),
        opt.logical_snapshot(&prog, &opt_layout)
    );
}

#[test]
fn breaks_and_continues_execute_correctly() {
    let (p, l, fin, _) = exec(
        "param NPROC = 1; shared int out;
         fn main() { forall p in 0 .. 1 {
             var i; var s = 0;
             for i in 0 .. 10 {
                 if (i % 2 == 1) { continue; }
                 if (i == 8) { break; }
                 s = s + i;
             }
             out = s;
         } }",
        1,
    );
    // 0 + 2 + 4 + 6 = 12
    assert_eq!(value_of(&p, &l, &fin, "out", 0), 12);
}

#[test]
fn negative_step_counts_down() {
    let (p, l, fin, _) = exec(
        "param NPROC = 1; shared int out;
         fn main() { forall p in 0 .. 1 {
             var i; var s = 0;
             for i in 5 .. 0 step -1 { s = s + i; }
             out = s;
         } }",
        1,
    );
    // 5+4+3+2+1 = 15
    assert_eq!(value_of(&p, &l, &fin, "out", 0), 15);
}

#[test]
fn short_circuit_avoids_side_effects() {
    let (p, l, fin, _) = exec(
        "param NPROC = 1; shared int a[2]; shared int touched;
         fn probe() { touched = touched + 1; return 1; }
         fn main() { forall p in 0 .. 1 {
             if (0 && probe()) { a[0] = 1; }
             if (1 || probe()) { a[1] = 1; }
         } }",
        1,
    );
    assert_eq!(value_of(&p, &l, &fin, "touched", 0), 0);
    assert_eq!(value_of(&p, &l, &fin, "a", 1), 1);
}

#[test]
fn indirection_access_works_end_to_end() {
    // Compiler plan indirects `d`; values must still round-trip.
    let src = "param NPROC = 4; shared int first[NPROC + 1]; shared int d[64];
         fn main() {
             var q;
             for q in 0 .. NPROC + 1 { first[q] = q * 16; }
             forall p in 0 .. NPROC { var i; var t;
                 for t in 0 .. 10 {
                     for i in first[p] .. first[p + 1] { d[i] = d[i] + 1; }
                 }
             }
         }";
    let prog = fsr_lang::compile(src).unwrap();
    let analysis = fsr_analysis::analyze(&prog).unwrap();
    let plan =
        fsr_transform::plan_for(&prog, &analysis, &fsr_transform::PlanConfig::with_block(64));
    let (d, _) = prog.object_by_name("d").unwrap();
    assert!(matches!(
        plan.get(d),
        Some(fsr_transform::ObjPlan::Indirect { .. })
    ));
    let layout = fsr_layout::Layout::build(&prog, &plan, 4);
    let code = compile_program(&prog).unwrap();
    let fin = run(
        &prog,
        &layout,
        &code,
        RunConfig::default(),
        &mut CountingSink::default(),
    )
    .unwrap();
    for e in 0..64 {
        assert_eq!(value_of(&prog, &layout, &fin, "d", e), 10, "element {e}");
    }
}

/// Sink that records sync/handoff/steal events.
#[derive(Default)]
struct EventSink {
    refs: u64,
    syncs: Vec<Vec<u32>>,
    handoffs: Vec<(u32, u32)>,
    steals: Vec<(u32, u32)>,
}

impl TraceSink for EventSink {
    fn access(&mut self, _r: MemRef) {
        self.refs += 1;
    }
    fn sync(&mut self, pids: &[u32]) {
        self.syncs.push(pids.to_vec());
    }
    fn handoff(&mut self, from: u32, to: u32) {
        self.handoffs.push((from, to));
    }
    fn steal(&mut self, thief: u32, victim: u32) {
        self.steals.push((thief, victim));
    }
}

#[test]
fn barriers_emit_sync_events() {
    let prog = fsr_lang::compile(
        "param NPROC = 3; shared int a[NPROC];
         fn main() { forall p in 0 .. NPROC {
             a[p] = 1; barrier; a[p] = 2; barrier;
         } }",
    )
    .unwrap();
    let plan = LayoutPlan::unoptimized(64);
    let layout = fsr_layout::Layout::build(&prog, &plan, 3);
    let code = compile_program(&prog).unwrap();
    let mut sink = EventSink::default();
    run(&prog, &layout, &code, RunConfig::default(), &mut sink).unwrap();
    // spawn + 2 barriers + join = at least 4 syncs; barrier releases
    // cover all 3 processes.
    assert!(sink.syncs.len() >= 4, "{:?}", sink.syncs);
    assert!(sink.syncs.iter().any(|s| s.len() == 3));
}

#[test]
fn contended_locks_emit_handoffs() {
    let prog = fsr_lang::compile(
        "param NPROC = 4; shared lock lk; shared int x;
         fn main() { forall p in 0 .. NPROC { var i;
             for i in 0 .. 5 { lock(lk); x = x + 1; unlock(lk); } } }",
    )
    .unwrap();
    let plan = LayoutPlan::unoptimized(64);
    let layout = fsr_layout::Layout::build(&prog, &plan, 4);
    let code = compile_program(&prog).unwrap();
    let mut sink = EventSink::default();
    run(&prog, &layout, &code, RunConfig::default(), &mut sink).unwrap();
    assert!(!sink.handoffs.is_empty());
    // A hand-off never names the same process on both sides.
    assert!(sink.handoffs.iter().all(|(f, t)| f != t));
}

#[test]
fn uncontended_lock_reacquisition_by_same_proc_has_no_handoff() {
    let prog = fsr_lang::compile(
        "param NPROC = 1; shared lock lk; shared int x;
         fn main() { forall p in 0 .. 1 { var i;
             for i in 0 .. 5 { lock(lk); x = x + 1; unlock(lk); } } }",
    )
    .unwrap();
    let plan = LayoutPlan::unoptimized(64);
    let layout = fsr_layout::Layout::build(&prog, &plan, 1);
    let code = compile_program(&prog).unwrap();
    let mut sink = EventSink::default();
    run(&prog, &layout, &code, RunConfig::default(), &mut sink).unwrap();
    assert!(sink.handoffs.is_empty());
}

const TEE_SRC: &str = "param NPROC = 4; shared lock lk; shared int c[NPROC]; shared int x;
     fn main() { forall p in 0 .. NPROC { var i;
         for i in 0 .. 20 { c[p] = c[p] + 1; }
         lock(lk); x = x + 1; unlock(lk); } }";

fn tee_fixture() -> (fsr_lang::Program, fsr_layout::Layout, Compiled) {
    let prog = fsr_lang::compile(TEE_SRC).unwrap();
    let layout = fsr_layout::Layout::build(&prog, &LayoutPlan::unoptimized(64), 4);
    let code = compile_program(&prog).unwrap();
    (prog, layout, code)
}

#[test]
fn tee_sink_forwards_every_event_to_every_inner_sink() {
    let (prog, layout, code) = tee_fixture();
    let mut direct = RecordedTrace::default();
    let fin1 = run(&prog, &layout, &code, RunConfig::default(), &mut direct).unwrap();

    let mut tee = TeeSink::new(vec![RecordedTrace::default(), RecordedTrace::default()]);
    let fin2 = run(&prog, &layout, &code, RunConfig::default(), &mut tee).unwrap();

    assert_eq!(fin1.stats, fin2.stats, "interpretation is sink-independent");
    let inner = tee.into_inner();
    assert!(!direct.events.is_empty());
    assert!(direct
        .events
        .iter()
        .any(|e| matches!(e, TraceEvent::Sync(_))));
    for s in &inner {
        assert_eq!(s.events, direct.events, "each fan-out sees the full stream");
    }
}

#[test]
fn recorded_trace_replay_reproduces_the_stream() {
    let (prog, layout, code) = tee_fixture();
    let mut rec = RecordedTrace::default();
    run(&prog, &layout, &code, RunConfig::default(), &mut rec).unwrap();

    let mut replayed = RecordedTrace::default();
    rec.replay(&mut replayed);
    assert_eq!(rec.events, replayed.events);

    // Replaying only accesses into a VecSink matches a direct VecSink run.
    let mut vec_direct = VecSink::default();
    run(&prog, &layout, &code, RunConfig::default(), &mut vec_direct).unwrap();
    let mut vec_replayed = VecSink::default();
    rec.replay(&mut vec_replayed);
    assert_eq!(vec_direct.0, vec_replayed.0);
}

#[test]
fn runs_started_counts_interpreter_constructions() {
    let (prog, layout, code) = tee_fixture();
    let before = runs_started();
    run(
        &prog,
        &layout,
        &code,
        RunConfig::default(),
        &mut VecSink::default(),
    )
    .unwrap();
    run(
        &prog,
        &layout,
        &code,
        RunConfig::default(),
        &mut VecSink::default(),
    )
    .unwrap();
    assert!(runs_started() - before >= 2);
}

/// A kernel with barrier skew and lock contention: processes block at
/// different times, so the work-stealing deques go out of balance and
/// steals actually happen.
const STEALY: &str = "param NPROC = 4;
    shared int c[NPROC]; shared lock lk; shared int total;
    fn main() { forall p in 0 .. NPROC { var i; var j;
        for i in 0 .. (5 + p * 7) { c[p] = c[p] + 1; }
        barrier;
        for j in 0 .. 10 { lock(lk); total = total + 1; unlock(lk); }
        barrier;
        for i in 0 .. (20 - p * 4) { c[p] = c[p] + 1; }
    } }";

fn run_sched(src: &str, nproc: u32, schedule: Schedule) -> (RecordedTrace, FinalState) {
    let prog = fsr_lang::compile(src).unwrap();
    let plan = LayoutPlan::unoptimized(64);
    let layout = fsr_layout::Layout::build(&prog, &plan, nproc);
    let code = compile_program(&prog).unwrap();
    let mut rec = RecordedTrace::default();
    let cfg = RunConfig {
        schedule,
        ..RunConfig::default()
    };
    let fin = run(&prog, &layout, &code, cfg, &mut rec).unwrap();
    (rec, fin)
}

#[test]
fn work_steal_fixed_seed_is_bit_identical_across_runs() {
    let a = run_sched(STEALY, 4, Schedule::WorkSteal { seed: 42 });
    let b = run_sched(STEALY, 4, Schedule::WorkSteal { seed: 42 });
    assert_eq!(a.0.events, b.0.events, "same seed, same trace");
    assert_eq!(a.1.stats, b.1.stats, "same seed, same stats");
    assert_eq!(a.1.mem, b.1.mem, "same seed, same memory image");
}

#[test]
fn work_steal_emits_steals_that_match_the_counter() {
    let (rec, fin) = run_sched(STEALY, 4, Schedule::WorkSteal { seed: 7 });
    let steal_events = rec
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Steal { .. }))
        .count() as u64;
    assert!(fin.stats.steals > 0, "imbalanced kernel must steal");
    assert_eq!(steal_events, fin.stats.steals);
    for e in &rec.events {
        if let TraceEvent::Steal { thief, victim } = e {
            assert_ne!(thief, victim, "no self-steals");
            assert!(*thief < 4 && *victim < 4, "worker ids in range");
        }
    }
}

#[test]
fn work_steal_preserves_program_semantics() {
    let prog = fsr_lang::compile(STEALY).unwrap();
    let plan = LayoutPlan::unoptimized(64);
    let layout = fsr_layout::Layout::build(&prog, &plan, 4);
    let (_, rr) = run_sched(STEALY, 4, Schedule::RoundRobin);
    for seed in [1u64, 99, 0xdead_beef] {
        let (_, ws) = run_sched(STEALY, 4, Schedule::WorkSteal { seed });
        assert_eq!(
            rr.logical_snapshot(&prog, &layout),
            ws.logical_snapshot(&prog, &layout),
            "schedule must not change program results (seed {seed})"
        );
    }
}

#[test]
fn different_steal_seeds_produce_different_traces() {
    let a = run_sched(STEALY, 4, Schedule::WorkSteal { seed: 1 });
    let b = run_sched(STEALY, 4, Schedule::WorkSteal { seed: 2 });
    assert_ne!(
        a.0.events, b.0.events,
        "distinct seeds must perturb the interleaving"
    );
}

#[test]
fn round_robin_traces_never_contain_steals() {
    let (rec, fin) = run_sched(STEALY, 4, Schedule::RoundRobin);
    assert_eq!(fin.stats.steals, 0);
    assert!(rec
        .events
        .iter()
        .all(|e| !matches!(e, TraceEvent::Steal { .. })));
}

#[test]
fn explicit_round_robin_matches_the_default_schedule() {
    let prog = fsr_lang::compile(STEALY).unwrap();
    let plan = LayoutPlan::unoptimized(64);
    let layout = fsr_layout::Layout::build(&prog, &plan, 4);
    let code = compile_program(&prog).unwrap();
    let mut def = RecordedTrace::default();
    run(&prog, &layout, &code, RunConfig::default(), &mut def).unwrap();
    let (rr, _) = run_sched(STEALY, 4, Schedule::RoundRobin);
    assert_eq!(def.events, rr.events);
}

#[test]
fn work_steal_trace_is_race_free_under_the_steal_edge() {
    // The kernel is fully synchronized (barriers + one lock); replaying
    // a work-stealing trace through the happens-before checker must
    // stay clean on the data words — the steal edge orders migrated
    // tasks' accesses. Lock words race by construction; filter them.
    let prog = fsr_lang::compile(STEALY).unwrap();
    let plan = LayoutPlan::unoptimized(64);
    let layout = fsr_layout::Layout::build(&prog, &plan, 4);
    let (lk, _) = prog.object_by_name("lk").unwrap();
    let (rec, _) = run_sched(STEALY, 4, Schedule::WorkSteal { seed: 3 });
    let mut hb = HbChecker::new(4);
    rec.replay(&mut hb);
    let data_races: Vec<u32> = hb
        .racy_words()
        .iter()
        .copied()
        .filter(|&w| layout.attribute(w) != Some(lk))
        .collect();
    assert!(data_races.is_empty(), "racy data words: {data_races:?}");
}
