//! Register bytecode for the SPMD interpreter.
//!
//! Each PSL function compiles to a flat instruction vector over a frame
//! of `i32` registers: local slots first (matching the checker's slot
//! numbering), expression temporaries after. The `forall` body is
//! extracted into a synthetic function so process spawn/join is a single
//! instruction pair in `main`.

use fsr_lang::ast::{FieldId, ObjId};

/// Register index within a frame.
pub type Reg = u16;

/// Binary ALU operations (subset semantics of PSL's `BinOp` on wrapping
/// `i32`; comparisons and logic produce 0/1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alu {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

/// A memory access path: object + index registers + field selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessSpec {
    pub obj: ObjId,
    /// One register per declared dimension.
    pub idx: Vec<Reg>,
    /// Field and optional field-array index register.
    pub field: Option<(FieldId, Option<Reg>)>,
}

/// One instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// `dst = v`
    Const {
        dst: Reg,
        v: i32,
    },
    /// `dst = src`
    Mov {
        dst: Reg,
        src: Reg,
    },
    /// `dst = a op b`
    Bin {
        op: Alu,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// `dst = -src`
    Neg {
        dst: Reg,
        src: Reg,
    },
    /// `dst = (src == 0)`
    Not {
        dst: Reg,
        src: Reg,
    },
    /// Unconditional jump.
    Jmp {
        target: u32,
    },
    /// Jump when `src == 0`.
    Jz {
        src: Reg,
        target: u32,
    },
    /// Jump when `src != 0`.
    Jnz {
        src: Reg,
        target: u32,
    },
    /// Load a shared/private element into `dst`.
    Ld {
        dst: Reg,
        acc: AccessSpec,
    },
    /// Store `src` into an element.
    St {
        src: Reg,
        acc: AccessSpec,
    },
    /// Call a user function; `args` are copied into the callee frame.
    Call {
        func: u32,
        args: Box<[Reg]>,
        dst: Option<Reg>,
    },
    /// Return, optionally with a value.
    Ret {
        src: Option<Reg>,
    },
    /// Barrier synchronization.
    Barrier,
    /// Acquire a (test-and-set, spinning) lock.
    LockAcq {
        acc: AccessSpec,
    },
    /// Release a lock.
    LockRel {
        acc: AccessSpec,
    },
    /// `dst = prand(src)` — deterministic hash.
    Prand {
        dst: Reg,
        src: Reg,
    },
    /// `dst = min(a, b)` / `max` / `abs(src)`.
    Min {
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    Max {
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    Abs {
        dst: Reg,
        src: Reg,
    },
    /// Spawn the forall body on every process; the master joins before
    /// continuing.
    Spawn {
        body_func: u32,
        pdv_slot: Reg,
    },
}

/// Compiled form of one function.
#[derive(Debug, Clone)]
pub struct FuncCode {
    pub name: String,
    pub code: Vec<Instr>,
    pub num_regs: u16,
    pub num_params: u16,
}

/// A compiled program: one `FuncCode` per source function plus the
/// synthetic forall body (last).
#[derive(Debug, Clone)]
pub struct Compiled {
    pub funcs: Vec<FuncCode>,
    pub main: u32,
    pub body: u32,
}

impl Compiled {
    pub fn func(&self, id: u32) -> &FuncCode {
        &self.funcs[id as usize]
    }

    /// Total instruction count (compile metric).
    pub fn total_instrs(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_spec_equality() {
        let a = AccessSpec {
            obj: ObjId(1),
            idx: vec![3],
            field: None,
        };
        assert_eq!(a, a.clone());
    }

    #[test]
    fn compiled_totals() {
        let c = Compiled {
            funcs: vec![
                FuncCode {
                    name: "a".into(),
                    code: vec![Instr::Ret { src: None }],
                    num_regs: 1,
                    num_params: 0,
                },
                FuncCode {
                    name: "b".into(),
                    code: vec![Instr::Barrier, Instr::Ret { src: None }],
                    num_regs: 0,
                    num_params: 0,
                },
            ],
            main: 0,
            body: 1,
        };
        assert_eq!(c.total_instrs(), 3);
        assert_eq!(c.func(1).code.len(), 2);
    }
}
