//! AST → bytecode compiler.

use crate::bytecode::*;
use fsr_lang::ast::{
    BinOp, Block, Builtin, Callee, Expr, ExprKind, Func, Place, Program, Stmt, StmtKind, Target,
    UnOp, VarRef,
};
use fsr_lang::diag::{Error, Span, Stage};

struct FnCompiler<'p> {
    prog: &'p Program,
    code: Vec<Instr>,
    next_temp: u16,
    max_reg: u16,
    num_slots: u16,
    /// (break patch sites, continue target) per enclosing loop.
    loops: Vec<LoopPatch>,
}

struct LoopPatch {
    breaks: Vec<usize>,
    continue_target: u32,
    /// Continue sites patched later for `for` loops (jump to step code).
    continues: Vec<usize>,
    continue_known: bool,
}

fn err(msg: impl Into<String>, span: Span) -> Error {
    Error::new(Stage::Check, msg, span)
}

impl<'p> FnCompiler<'p> {
    fn new(prog: &'p Program, num_slots: u16) -> Self {
        FnCompiler {
            prog,
            code: Vec::new(),
            next_temp: num_slots,
            max_reg: num_slots,
            num_slots,
            loops: Vec::new(),
        }
    }

    fn temp(&mut self) -> Reg {
        let r = self.next_temp;
        self.next_temp += 1;
        if self.next_temp > self.max_reg {
            self.max_reg = self.next_temp;
        }
        if self.next_temp == u16::MAX {
            panic!("expression too complex: register file exhausted");
        }
        r
    }

    /// Reset the temp cursor (between statements).
    fn reset_temps(&mut self) {
        self.next_temp = self.num_slots;
    }

    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch_jump(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Instr::Jmp { target: t }
            | Instr::Jz { target: t, .. }
            | Instr::Jnz { target: t, .. } => *t = target,
            other => panic!("patching non-jump {other:?}"),
        }
    }

    fn alu_of(op: BinOp) -> Option<Alu> {
        Some(match op {
            BinOp::Add => Alu::Add,
            BinOp::Sub => Alu::Sub,
            BinOp::Mul => Alu::Mul,
            BinOp::Div => Alu::Div,
            BinOp::Rem => Alu::Rem,
            BinOp::Eq => Alu::Eq,
            BinOp::Ne => Alu::Ne,
            BinOp::Lt => Alu::Lt,
            BinOp::Le => Alu::Le,
            BinOp::Gt => Alu::Gt,
            BinOp::Ge => Alu::Ge,
            BinOp::BitAnd => Alu::BitAnd,
            BinOp::BitOr => Alu::BitOr,
            BinOp::BitXor => Alu::BitXor,
            BinOp::Shl => Alu::Shl,
            BinOp::Shr => Alu::Shr,
            BinOp::And | BinOp::Or => return None,
        })
    }

    fn access_spec(&mut self, pl: &Place) -> Result<AccessSpec, Error> {
        let mut idx = Vec::with_capacity(pl.idx.len());
        for e in &pl.idx {
            idx.push(self.expr(e)?);
        }
        let field = match &pl.field {
            None => None,
            Some((f, fe)) => {
                let r = match fe {
                    Some(fe) => Some(self.expr(fe)?),
                    None => None,
                };
                Some((*f, r))
            }
        };
        Ok(AccessSpec {
            obj: pl.obj,
            idx,
            field,
        })
    }

    /// Compile an expression into a register.
    fn expr(&mut self, e: &Expr) -> Result<Reg, Error> {
        match &e.kind {
            ExprKind::Int(v) => {
                let dst = self.temp();
                self.emit(Instr::Const { dst, v: *v as i32 });
                Ok(dst)
            }
            ExprKind::Var(VarRef::Local(s)) => Ok(*s as Reg),
            ExprKind::Var(VarRef::Param(i)) => {
                let dst = self.temp();
                let v = self.prog.params[*i as usize].value.unwrap_or(0) as i32;
                self.emit(Instr::Const { dst, v });
                Ok(dst)
            }
            ExprKind::Var(VarRef::Const(i)) => {
                let dst = self.temp();
                let v = self.prog.consts[*i as usize].value.unwrap_or(0) as i32;
                self.emit(Instr::Const { dst, v });
                Ok(dst)
            }
            ExprKind::Load(pl) => {
                let acc = self.access_spec(pl)?;
                let dst = self.temp();
                self.emit(Instr::Ld { dst, acc });
                Ok(dst)
            }
            ExprKind::Unary(UnOp::Neg, a) => {
                let src = self.expr(a)?;
                let dst = self.temp();
                self.emit(Instr::Neg { dst, src });
                Ok(dst)
            }
            ExprKind::Unary(UnOp::Not, a) => {
                let src = self.expr(a)?;
                let dst = self.temp();
                self.emit(Instr::Not { dst, src });
                Ok(dst)
            }
            ExprKind::Binary(op @ (BinOp::And | BinOp::Or), a, b) => {
                // Short-circuit: dst = a; if (And: dst==0 / Or: dst!=0)
                // skip b.
                let dst = self.temp();
                let ra = self.expr(a)?;
                self.emit(Instr::Not { dst, src: ra });
                self.emit(Instr::Not { dst, src: dst }); // normalize 0/1
                let j = if matches!(op, BinOp::And) {
                    self.emit(Instr::Jz {
                        src: dst,
                        target: 0,
                    })
                } else {
                    self.emit(Instr::Jnz {
                        src: dst,
                        target: 0,
                    })
                };
                let rb = self.expr(b)?;
                self.emit(Instr::Not { dst, src: rb });
                self.emit(Instr::Not { dst, src: dst });
                let end = self.here();
                self.patch_jump(j, end);
                Ok(dst)
            }
            ExprKind::Binary(op, a, b) => {
                let ra = self.expr(a)?;
                let rb = self.expr(b)?;
                let dst = self.temp();
                let alu = Self::alu_of(*op).expect("non-logic op");
                self.emit(Instr::Bin {
                    op: alu,
                    dst,
                    a: ra,
                    b: rb,
                });
                Ok(dst)
            }
            ExprKind::Call(Callee::Builtin(b), args) => {
                let regs: Vec<Reg> = args
                    .iter()
                    .map(|a| self.expr(a))
                    .collect::<Result<_, _>>()?;
                let dst = self.temp();
                match b {
                    Builtin::Prand => self.emit(Instr::Prand { dst, src: regs[0] }),
                    Builtin::Abs => self.emit(Instr::Abs { dst, src: regs[0] }),
                    Builtin::Min => self.emit(Instr::Min {
                        dst,
                        a: regs[0],
                        b: regs[1],
                    }),
                    Builtin::Max => self.emit(Instr::Max {
                        dst,
                        a: regs[0],
                        b: regs[1],
                    }),
                };
                Ok(dst)
            }
            ExprKind::Call(Callee::User(f), args) => {
                let regs: Vec<Reg> = args
                    .iter()
                    .map(|a| self.expr(a))
                    .collect::<Result<_, _>>()?;
                let dst = self.temp();
                self.emit(Instr::Call {
                    func: f.0,
                    args: regs.into_boxed_slice(),
                    dst: Some(dst),
                });
                Ok(dst)
            }
            ExprKind::Path(_) | ExprKind::CallNamed(..) => {
                Err(err("unresolved name in checked program", e.span))
            }
        }
    }

    fn block(&mut self, b: &Block) -> Result<(), Error> {
        for s in &b.stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), Error> {
        self.reset_temps();
        match &s.kind {
            StmtKind::VarDecl { init, slot, .. } => {
                let dst = *slot as Reg;
                match init {
                    Some(e) => {
                        let src = self.expr(e)?;
                        self.emit(Instr::Mov { dst, src });
                    }
                    None => {
                        self.emit(Instr::Const { dst, v: 0 });
                    }
                }
            }
            StmtKind::Assign { target, value } => {
                let src = self.expr(value)?;
                match target {
                    Target::Local(slot) => {
                        self.emit(Instr::Mov {
                            dst: *slot as Reg,
                            src,
                        });
                    }
                    Target::Place(pl) => {
                        let acc = self.access_spec(pl)?;
                        self.emit(Instr::St { src, acc });
                    }
                    Target::Path(_) => return Err(err("unresolved target", s.span)),
                }
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self.expr(cond)?;
                let jz = self.emit(Instr::Jz { src: c, target: 0 });
                self.block(then_blk)?;
                match else_blk {
                    None => {
                        let end = self.here();
                        self.patch_jump(jz, end);
                    }
                    Some(e) => {
                        let jend = self.emit(Instr::Jmp { target: 0 });
                        let else_at = self.here();
                        self.patch_jump(jz, else_at);
                        self.block(e)?;
                        let end = self.here();
                        self.patch_jump(jend, end);
                    }
                }
            }
            StmtKind::While { cond, body } => {
                let top = self.here();
                self.reset_temps();
                let c = self.expr(cond)?;
                let jz = self.emit(Instr::Jz { src: c, target: 0 });
                self.loops.push(LoopPatch {
                    breaks: Vec::new(),
                    continue_target: top,
                    continues: Vec::new(),
                    continue_known: true,
                });
                self.block(body)?;
                self.emit(Instr::Jmp { target: top });
                let end = self.here();
                self.patch_jump(jz, end);
                let lp = self.loops.pop().unwrap();
                for b in lp.breaks {
                    self.patch_jump(b, end);
                }
            }
            StmtKind::For {
                slot,
                lo,
                hi,
                step,
                body,
                ..
            } => {
                // var = lo; hi_r = hi; step_r = step;
                // loop: cond = (step>0 && var<hi) || (step<0 && var>hi);
                // if !cond break; body; continue: var += step; goto loop
                let var = *slot as Reg;
                let lo_r = self.expr(lo)?;
                self.emit(Instr::Mov {
                    dst: var,
                    src: lo_r,
                });
                // hi/step are pinned in dedicated temps that survive the
                // per-statement temp reset (allocated before the loop and
                // never released until the loop ends).
                let hi_r = {
                    let v = self.expr(hi)?;
                    let pin = self.temp();
                    self.emit(Instr::Mov { dst: pin, src: v });
                    pin
                };
                let step_r = {
                    let pin = self.temp();
                    match step {
                        Some(e) => {
                            let v = self.expr(e)?;
                            self.emit(Instr::Mov { dst: pin, src: v });
                        }
                        None => {
                            self.emit(Instr::Const { dst: pin, v: 1 });
                        }
                    }
                    pin
                };
                // Protect pinned temps by bumping the reset floor.
                let saved_floor = self.num_slots;
                self.num_slots = self.next_temp;
                let top = self.here();
                self.reset_temps();
                // cond computation
                let zero = self.temp();
                self.emit(Instr::Const { dst: zero, v: 0 });
                let pos = self.temp();
                self.emit(Instr::Bin {
                    op: Alu::Gt,
                    dst: pos,
                    a: step_r,
                    b: zero,
                });
                let lt = self.temp();
                self.emit(Instr::Bin {
                    op: Alu::Lt,
                    dst: lt,
                    a: var,
                    b: hi_r,
                });
                let gt = self.temp();
                self.emit(Instr::Bin {
                    op: Alu::Gt,
                    dst: gt,
                    a: var,
                    b: hi_r,
                });
                // cond = pos ? lt : gt  =  pos*lt + (1-pos)*gt
                let t1 = self.temp();
                self.emit(Instr::Bin {
                    op: Alu::Mul,
                    dst: t1,
                    a: pos,
                    b: lt,
                });
                let one = self.temp();
                self.emit(Instr::Const { dst: one, v: 1 });
                let npos = self.temp();
                self.emit(Instr::Bin {
                    op: Alu::Sub,
                    dst: npos,
                    a: one,
                    b: pos,
                });
                let t2 = self.temp();
                self.emit(Instr::Bin {
                    op: Alu::Mul,
                    dst: t2,
                    a: npos,
                    b: gt,
                });
                let cond = self.temp();
                self.emit(Instr::Bin {
                    op: Alu::Add,
                    dst: cond,
                    a: t1,
                    b: t2,
                });
                let jz = self.emit(Instr::Jz {
                    src: cond,
                    target: 0,
                });
                self.loops.push(LoopPatch {
                    breaks: Vec::new(),
                    continue_target: 0,
                    continues: Vec::new(),
                    continue_known: false,
                });
                self.block(body)?;
                // continue target: the increment.
                let inc_at = self.here();
                self.emit(Instr::Bin {
                    op: Alu::Add,
                    dst: var,
                    a: var,
                    b: step_r,
                });
                self.emit(Instr::Jmp { target: top });
                let end = self.here();
                self.patch_jump(jz, end);
                let lp = self.loops.pop().unwrap();
                for b in lp.breaks {
                    self.patch_jump(b, end);
                }
                for c in lp.continues {
                    self.patch_jump(c, inc_at);
                }
                self.num_slots = saved_floor;
            }
            StmtKind::Forall { slot, body: _, .. } => {
                // The body was extracted into the synthetic function; its
                // id is patched by `compile_program` (we use a marker with
                // the slot and fix the func id afterwards).
                self.emit(Instr::Spawn {
                    body_func: u32::MAX,
                    pdv_slot: *slot as Reg,
                });
            }
            StmtKind::Barrier { .. } => {
                self.emit(Instr::Barrier);
            }
            StmtKind::Lock { target } => {
                let Target::Place(pl) = target else {
                    return Err(err("unresolved lock target", s.span));
                };
                let acc = self.access_spec(pl)?;
                self.emit(Instr::LockAcq { acc });
            }
            StmtKind::Unlock { target } => {
                let Target::Place(pl) = target else {
                    return Err(err("unresolved unlock target", s.span));
                };
                let acc = self.access_spec(pl)?;
                self.emit(Instr::LockRel { acc });
            }
            StmtKind::CallStmt { callee, args, .. } => match callee {
                Some(Callee::User(f)) => {
                    let regs: Vec<Reg> = args
                        .iter()
                        .map(|a| self.expr(a))
                        .collect::<Result<_, _>>()?;
                    self.emit(Instr::Call {
                        func: f.0,
                        args: regs.into_boxed_slice(),
                        dst: None,
                    });
                }
                Some(Callee::Builtin(_)) => {
                    // Builtins are pure; a builtin call statement is a
                    // no-op beyond evaluating its arguments.
                    for a in args {
                        self.expr(a)?;
                    }
                }
                None => return Err(err("unresolved call", s.span)),
            },
            StmtKind::Return(e) => {
                let src = match e {
                    Some(e) => Some(self.expr(e)?),
                    None => None,
                };
                self.emit(Instr::Ret { src });
            }
            StmtKind::Break => {
                let j = self.emit(Instr::Jmp { target: 0 });
                let lp = self
                    .loops
                    .last_mut()
                    .ok_or_else(|| err("break outside loop", s.span))?;
                lp.breaks.push(j);
            }
            StmtKind::Continue => {
                let lp_known = self
                    .loops
                    .last()
                    .map(|l| l.continue_known)
                    .ok_or_else(|| err("continue outside loop", s.span))?;
                if lp_known {
                    let t = self.loops.last().unwrap().continue_target;
                    self.emit(Instr::Jmp { target: t });
                } else {
                    let j = self.emit(Instr::Jmp { target: 0 });
                    self.loops.last_mut().unwrap().continues.push(j);
                }
            }
            StmtKind::Block(b) => self.block(b)?,
        }
        Ok(())
    }
}

fn compile_func_body(
    prog: &Program,
    f: &Func,
    body: &Block,
    name: &str,
) -> Result<FuncCode, Error> {
    let mut c = FnCompiler::new(prog, f.num_slots as u16);
    c.block(body)?;
    c.emit(Instr::Ret { src: None });
    Ok(FuncCode {
        name: name.to_string(),
        code: c.code,
        num_regs: c.max_reg,
        num_params: f.params.len() as u16,
    })
}

/// Compile a checked program to bytecode.
pub fn compile_program(prog: &Program) -> Result<Compiled, Error> {
    let mut funcs = Vec::with_capacity(prog.funcs.len() + 1);
    for f in &prog.funcs {
        funcs.push(compile_func_body(prog, f, &f.body, &f.name)?);
    }
    // Synthetic forall body: shares main's frame layout (fork-with-copy
    // semantics: children receive a copy of the master's locals).
    let main_id = prog.main.expect("checked program").0;
    let main_fn = prog.func(fsr_lang::ast::FuncId(main_id));
    let mut body_code = None;
    for s in &main_fn.body.stmts {
        if let StmtKind::Forall { body, .. } = &s.kind {
            let fc = compile_func_body(prog, main_fn, body, "__forall_body")?;
            body_code = Some(fc);
        }
    }
    let body_fc = body_code.ok_or_else(|| err("program has no forall", main_fn.span))?;
    let body_id = funcs.len() as u32;
    funcs.push(body_fc);
    // Patch Spawn instructions in main with the body id.
    for inst in &mut funcs[main_id as usize].code {
        if let Instr::Spawn { body_func, .. } = inst {
            *body_func = body_id;
        }
    }
    Ok(Compiled {
        funcs,
        main: main_id,
        body: body_id,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Compiled {
        let prog = fsr_lang::compile(src).unwrap();
        compile_program(&prog).unwrap()
    }

    #[test]
    fn compiles_minimal_program() {
        let c = compile("fn main() { forall p in 0 .. 2 { } }");
        assert_eq!(c.funcs.len(), 2); // main + body
        let main = c.func(c.main);
        assert!(main
            .code
            .iter()
            .any(|i| matches!(i, Instr::Spawn { body_func, .. } if *body_func == c.body)));
    }

    #[test]
    fn compiles_arith_and_memory() {
        let c = compile(
            "shared int a[8];
             fn main() { forall p in 0 .. 2 { a[p] = a[p] + p * 3; } }",
        );
        let body = c.func(c.body);
        assert!(body.code.iter().any(|i| matches!(i, Instr::Ld { .. })));
        assert!(body.code.iter().any(|i| matches!(i, Instr::St { .. })));
        assert!(body
            .code
            .iter()
            .any(|i| matches!(i, Instr::Bin { op: Alu::Mul, .. })));
    }

    #[test]
    fn compiles_control_flow() {
        let c = compile(
            "fn main() { forall p in 0 .. 2 {
                 var i; var s = 0;
                 for i in 0 .. 10 step 2 {
                     if (i == 4) { continue; }
                     if (i == 8) { break; }
                     s = s + i;
                 }
                 while (s > 0) { s = s - 1; }
             } }",
        );
        let body = c.func(c.body);
        assert!(body.code.iter().any(|i| matches!(i, Instr::Jz { .. })));
        assert!(body.code.iter().any(|i| matches!(i, Instr::Jmp { .. })));
    }

    #[test]
    fn compiles_calls_and_builtins() {
        let c = compile(
            "fn f(int x) { return x * 2; }
             fn main() { forall p in 0 .. 2 {
                 var v = f(p) + min(p, 1) + prand(p) % 4;
             } }",
        );
        let body = c.func(c.body);
        assert!(body.code.iter().any(|i| matches!(i, Instr::Call { .. })));
        assert!(body.code.iter().any(|i| matches!(i, Instr::Prand { .. })));
        assert!(body.code.iter().any(|i| matches!(i, Instr::Min { .. })));
    }

    #[test]
    fn compiles_locks_and_barriers() {
        let c = compile(
            "shared lock lk; shared int x;
             fn main() { forall p in 0 .. 2 {
                 lock(lk); x = x + 1; unlock(lk); barrier;
             } }",
        );
        let body = c.func(c.body);
        assert!(body.code.iter().any(|i| matches!(i, Instr::LockAcq { .. })));
        assert!(body.code.iter().any(|i| matches!(i, Instr::LockRel { .. })));
        assert!(body.code.iter().any(|i| matches!(i, Instr::Barrier)));
    }

    #[test]
    fn jump_targets_in_range() {
        let c = compile(
            "fn main() { forall p in 0 .. 2 {
                 var i; for i in 0 .. 4 { if (i == 2) { break; } }
             } }",
        );
        for f in &c.funcs {
            for ins in &f.code {
                let t = match ins {
                    Instr::Jmp { target }
                    | Instr::Jz { target, .. }
                    | Instr::Jnz { target, .. } => Some(*target),
                    _ => None,
                };
                if let Some(t) = t {
                    assert!(
                        (t as usize) <= f.code.len(),
                        "target {t} out of range in {}",
                        f.name
                    );
                }
            }
        }
    }
}
