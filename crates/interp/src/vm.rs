//! The SPMD virtual machine.
//!
//! All logical processes execute in lock-step rounds: each runnable
//! process executes one instruction per round (the standard interleaving
//! assumption of trace-driven multiprocessor simulation). Barriers block
//! until every active process arrives; locks are test-and-set words whose
//! spin rereads are *emitted into the trace* (that traffic is what lock
//! padding addresses). Memory reference events stream to a [`TraceSink`]
//! as they happen, with a `gap` carrying the compute cycles (instruction
//! count) since the process's previous reference.

use crate::bytecode::*;
use fsr_lang::ast::{ObjId, Program, WORD_BYTES};
use fsr_layout::{Arena, Layout, Resolved};
use std::collections::BTreeMap;

/// One shared-memory reference event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    pub pid: u8,
    /// Byte address.
    pub addr: u32,
    pub write: bool,
    /// Compute cycles (executed instructions) since this process's
    /// previous memory reference.
    pub gap: u32,
}

/// Consumer of the reference stream.
pub trait TraceSink {
    fn access(&mut self, r: MemRef);

    /// Clock synchronization: the listed processes reached a
    /// synchronization point together (barrier release, process
    /// spawn/join). Timing models align their clocks; analyses that only
    /// count references may ignore it.
    fn sync(&mut self, pids: &[u32]) {
        let _ = pids;
    }

    /// Lock hand-off: `to` acquired a lock last released by `from`.
    /// Timing models order the acquirer after the releaser.
    fn handoff(&mut self, from: u32, to: u32) {
        let _ = (from, to);
    }
}

/// Count-only sink.
#[derive(Debug, Default, Clone)]
pub struct CountingSink {
    pub refs: u64,
    pub writes: u64,
}

impl TraceSink for CountingSink {
    fn access(&mut self, r: MemRef) {
        self.refs += 1;
        self.writes += r.write as u64;
    }
}

/// Buffer sink for tests and small traces.
#[derive(Debug, Default, Clone)]
pub struct VecSink(pub Vec<MemRef>);

impl TraceSink for VecSink {
    fn access(&mut self, r: MemRef) {
        self.0.push(r);
    }
}

/// Fan-out sink: forwards every trace event to each inner sink in order.
///
/// This is the "trace once, simulate many" primitive: the interpreter is
/// sink-agnostic, so one interpretation can drive N cache simulators (one
/// per block size) plus timing models simultaneously, producing exactly
/// the event stream each would have seen in its own run.
#[derive(Debug, Default)]
pub struct TeeSink<S: TraceSink> {
    pub sinks: Vec<S>,
}

impl<S: TraceSink> TeeSink<S> {
    pub fn new(sinks: Vec<S>) -> Self {
        TeeSink { sinks }
    }

    pub fn into_inner(self) -> Vec<S> {
        self.sinks
    }
}

impl<S: TraceSink> TraceSink for TeeSink<S> {
    fn access(&mut self, r: MemRef) {
        for s in &mut self.sinks {
            s.access(r);
        }
    }

    fn sync(&mut self, pids: &[u32]) {
        for s in &mut self.sinks {
            s.sync(pids);
        }
    }

    fn handoff(&mut self, from: u32, to: u32) {
        for s in &mut self.sinks {
            s.handoff(from, to);
        }
    }
}

/// One recorded trace event (access, barrier sync, or lock hand-off).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    Access(MemRef),
    Sync(Vec<u32>),
    Handoff { from: u32, to: u32 },
}

/// Sink that records the full event stream for later replay.
///
/// Recording costs memory proportional to the trace, so the batched
/// driver prefers [`TeeSink`] (replay-free fan-out); `RecordedTrace` is
/// for cases where consumers cannot all be constructed up front.
#[derive(Debug, Default, Clone)]
pub struct RecordedTrace {
    pub events: Vec<TraceEvent>,
}

impl RecordedTrace {
    /// Feed the recorded stream into another sink, in original order.
    pub fn replay(&self, sink: &mut dyn TraceSink) {
        for e in &self.events {
            match e {
                TraceEvent::Access(r) => sink.access(*r),
                TraceEvent::Sync(pids) => sink.sync(pids),
                TraceEvent::Handoff { from, to } => sink.handoff(*from, *to),
            }
        }
    }
}

impl TraceSink for RecordedTrace {
    fn access(&mut self, r: MemRef) {
        self.events.push(TraceEvent::Access(r));
    }

    fn sync(&mut self, pids: &[u32]) {
        self.events.push(TraceEvent::Sync(pids.to_vec()));
    }

    fn handoff(&mut self, from: u32, to: u32) {
        self.events.push(TraceEvent::Handoff { from, to });
    }
}

/// Process-wide count of interpreter runs started, for tests and batch
/// accounting: trace-sharing optimizations can assert that N jobs really
/// cost one interpretation.
static RUNS_STARTED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Total interpreter runs started in this process.
pub fn runs_started() -> u64 {
    RUNS_STARTED.load(std::sync::atomic::Ordering::Relaxed)
}

/// Run-time error (index out of bounds, division by zero, deadlock,
/// step-limit exhaustion, arena overflow).
#[derive(Debug, Clone)]
pub struct RuntimeError {
    pub pid: u32,
    pub msg: String,
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "runtime error on process {}: {}", self.pid, self.msg)
    }
}

impl std::error::Error for RuntimeError {}

/// Interpreter configuration.
///
/// `PartialEq`/`Hash` matter: the batched driver groups jobs whose
/// (layout, run config) pairs are identical, because those produce
/// identical traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunConfig {
    /// Seed for the `prand` builtin (identical across layouts so control
    /// flow is layout-independent).
    pub seed: u64,
    /// Abort after this many total executed instructions.
    pub max_steps: u64,
    /// While blocked on a lock, emit a spin reread every this many rounds.
    pub spin_probe_period: u32,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 0x5eed_cafe,
            max_steps: 2_000_000_000,
            spin_probe_period: 2,
        }
    }
}

/// Execution statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    pub instructions: u64,
    pub refs: u64,
    pub spin_rereads: u64,
    pub barriers_crossed: u64,
    pub lock_acquires: u64,
}

#[derive(Debug, Clone, PartialEq)]
enum ProcState {
    Run,
    AtBarrier,
    /// Spinning on a lock word at this byte address.
    Spin {
        addr: u32,
        rounds: u32,
    },
    /// Master waiting for children to finish the parallel region.
    Joining,
    /// Child finished its body.
    Idle,
    Done,
}

struct Frame {
    func: u32,
    pc: u32,
    regs: Vec<i32>,
    ret_dst: Option<Reg>,
    is_body: bool,
}

struct Proc {
    pid: u32,
    frames: Vec<Frame>,
    state: ProcState,
    gap: u32,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// The interpreter for one (program, layout) configuration.
pub struct Interp<'a> {
    layout: &'a Layout,
    code: &'a Compiled,
    dims: Vec<Vec<u32>>,
    mem: Vec<i32>,
    arenas: Vec<Arena>,
    procs: Vec<Proc>,
    cfg: RunConfig,
    stats: RunStats,
    barrier_arrived: u32,
    /// Last releaser of each lock word (for hand-off ordering).
    lock_releaser: std::collections::HashMap<u32, u32>,
}

impl<'a> Interp<'a> {
    pub fn new(prog: &Program, layout: &'a Layout, code: &'a Compiled, cfg: RunConfig) -> Self {
        RUNS_STARTED.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let nproc = layout.nproc;
        let main_fc = code.func(code.main);
        let mut procs: Vec<Proc> = (0..nproc)
            .map(|pid| Proc {
                pid,
                frames: Vec::new(),
                state: ProcState::Idle,
                gap: 0,
            })
            .collect();
        procs[0].frames.push(Frame {
            func: code.main,
            pc: 0,
            regs: vec![0; main_fc.num_regs as usize],
            ret_dst: None,
            is_body: false,
        });
        procs[0].state = ProcState::Run;
        Interp {
            layout,
            code,
            dims: prog.objects.iter().map(|o| o.dims.clone()).collect(),
            mem: vec![0; layout.total_words() as usize],
            arenas: layout.arenas.iter().map(Arena::new).collect(),
            procs,
            cfg,
            stats: RunStats::default(),
            barrier_arrived: 0,
            lock_releaser: std::collections::HashMap::new(),
        }
    }

    fn rt(&self, pid: u32, msg: impl Into<String>) -> RuntimeError {
        RuntimeError {
            pid,
            msg: msg.into(),
        }
    }

    /// Resolve an access spec against the registers of the current frame.
    fn resolve(&self, p: usize, acc: &AccessSpec) -> Result<(Resolved, u64), RuntimeError> {
        let pid = self.procs[p].pid;
        let frame = self.procs[p].frames.last().unwrap();
        let dims = &self.dims[acc.obj.index()];
        let mut flat: u64 = 0;
        for (k, &r) in acc.idx.iter().enumerate() {
            let v = frame.regs[r as usize];
            if v < 0 || v as u64 >= dims[k] as u64 {
                return Err(self.rt(
                    pid,
                    format!(
                        "index {} out of bounds 0..{} (dim {k}, object {})",
                        v, dims[k], acc.obj.0
                    ),
                ));
            }
            flat = flat * dims[k] as u64 + v as u64;
        }
        let field_sel = match &acc.field {
            None => None,
            Some((f, fr)) => {
                let (_, len) = self.layout.field_layout(acc.obj, *f);
                let fi = match fr {
                    None => 0,
                    Some(r) => {
                        let v = frame.regs[*r as usize];
                        if v < 0 || v as u32 >= len {
                            return Err(
                                self.rt(pid, format!("field index {v} out of bounds 0..{len}"))
                            );
                        }
                        v as u32
                    }
                };
                Some((*f, fi))
            }
        };
        Ok((self.layout.resolve(acc.obj, flat, field_sel, pid), flat))
    }

    /// Perform a data access (load or store), emitting trace events.
    fn access(
        &mut self,
        p: usize,
        acc: &AccessSpec,
        write: bool,
        value: i32,
        sink: &mut dyn TraceSink,
    ) -> Result<i32, RuntimeError> {
        let pid = self.procs[p].pid;
        let (resolved, _flat) = self.resolve(p, acc)?;
        let word = match resolved {
            Resolved::Direct(w) => w,
            Resolved::Indirect {
                ptr,
                off,
                slot_words,
                arena,
                lane,
            } => {
                // Pointer read.
                self.emit(p, ptr, false, sink);
                let mut target = self.mem[ptr as usize];
                if target == 0 {
                    // First touch: allocate in the toucher's arena lane.
                    let slot = self.arenas[arena as usize]
                        .alloc(pid, lane, slot_words)
                        .ok_or_else(|| self.rt(pid, "indirection arena exhausted"))?;
                    self.mem[ptr as usize] = slot as i32;
                    self.emit(p, ptr, true, sink);
                    target = slot as i32;
                }
                target as u32 + off
            }
        };
        self.emit(p, word, write, sink);
        if write {
            self.mem[word as usize] = value;
            Ok(value)
        } else {
            Ok(self.mem[word as usize])
        }
    }

    fn emit(&mut self, p: usize, word_addr: u32, write: bool, sink: &mut dyn TraceSink) {
        let gap = self.procs[p].gap;
        self.procs[p].gap = 0;
        self.stats.refs += 1;
        sink.access(MemRef {
            pid: self.procs[p].pid as u8,
            addr: word_addr * WORD_BYTES,
            write,
            gap,
        });
    }

    fn active_count(&self) -> u32 {
        self.procs
            .iter()
            .filter(|p| {
                matches!(
                    p.state,
                    ProcState::Run | ProcState::AtBarrier | ProcState::Spin { .. }
                )
            })
            .count() as u32
    }

    /// Run to completion, streaming references into `sink`.
    pub fn run(mut self, sink: &mut dyn TraceSink) -> Result<FinalState, RuntimeError> {
        let nproc = self.procs.len();
        loop {
            if matches!(self.procs[0].state, ProcState::Done) {
                break;
            }
            if self.stats.instructions > self.cfg.max_steps {
                return Err(self.rt(0, "step limit exceeded (infinite loop?)"));
            }
            let mut progressed = false;
            for p in 0..nproc {
                match self.procs[p].state {
                    ProcState::Run => {
                        self.step(p, sink)?;
                        progressed = true;
                    }
                    ProcState::AtBarrier => {
                        if self.barrier_arrived >= self.active_count() {
                            // Release everyone at the barrier.
                            let mut released = Vec::new();
                            for q in self.procs.iter_mut() {
                                if q.state == ProcState::AtBarrier {
                                    q.state = ProcState::Run;
                                    released.push(q.pid);
                                }
                            }
                            self.barrier_arrived = 0;
                            self.stats.barriers_crossed += 1;
                            progressed = !released.is_empty();
                            sink.sync(&released);
                        }
                    }
                    ProcState::Spin { addr, rounds } => {
                        // Test the lock word; reread goes into the trace
                        // every probe period.
                        let word = addr / WORD_BYTES;
                        let probe = rounds % self.cfg.spin_probe_period == 0;
                        if probe {
                            self.emit(p, word, false, sink);
                            self.stats.spin_rereads += 1;
                        }
                        if self.mem[word as usize] == 0 {
                            // Acquire: read saw it free; now test-and-set.
                            self.emit(p, word, true, sink);
                            self.mem[word as usize] = 1;
                            self.stats.lock_acquires += 1;
                            let pid = self.procs[p].pid;
                            if let Some(&from) = self.lock_releaser.get(&word) {
                                if from != pid {
                                    sink.handoff(from, pid);
                                }
                            }
                            self.procs[p].state = ProcState::Run;
                            progressed = true;
                        } else {
                            self.procs[p].state = ProcState::Spin {
                                addr,
                                rounds: rounds + 1,
                            };
                        }
                    }
                    ProcState::Joining => {
                        let all_idle = self.procs.iter().all(|q| {
                            q.pid == self.procs[p].pid
                                || matches!(q.state, ProcState::Idle | ProcState::Done)
                        });
                        if all_idle {
                            self.procs[p].state = ProcState::Run;
                            progressed = true;
                            let all: Vec<u32> = self.procs.iter().map(|q| q.pid).collect();
                            sink.sync(&all);
                        }
                    }
                    ProcState::Idle | ProcState::Done => {}
                }
            }
            if !progressed {
                // Barrier release is handled above; reaching here means a
                // real deadlock (e.g. everyone spinning on a held lock
                // whose holder is blocked).
                if self.barrier_arrived >= self.active_count() && self.barrier_arrived > 0 {
                    continue;
                }
                return Err(self.rt(0, "deadlock: no process can make progress"));
            }
        }
        Ok(FinalState {
            mem: self.mem,
            stats: self.stats,
        })
    }

    /// Execute one instruction of process `p`.
    fn step(&mut self, p: usize, sink: &mut dyn TraceSink) -> Result<(), RuntimeError> {
        self.stats.instructions += 1;
        self.procs[p].gap = self.procs[p].gap.saturating_add(1);
        let pid = self.procs[p].pid;
        let frame = self.procs[p].frames.last().unwrap();
        let fc = self.code.func(frame.func);
        if frame.pc as usize >= fc.code.len() {
            return self.do_ret(p, None);
        }
        let instr = fc.code[frame.pc as usize].clone();
        // Default: advance pc; jumps overwrite it.
        self.procs[p].frames.last_mut().unwrap().pc += 1;
        let regs = |procs: &Vec<Proc>, r: Reg| procs[p].frames.last().unwrap().regs[r as usize];
        match instr {
            Instr::Const { dst, v } => {
                self.procs[p].frames.last_mut().unwrap().regs[dst as usize] = v;
            }
            Instr::Mov { dst, src } => {
                let v = regs(&self.procs, src);
                self.procs[p].frames.last_mut().unwrap().regs[dst as usize] = v;
            }
            Instr::Bin { op, dst, a, b } => {
                let x = regs(&self.procs, a);
                let y = regs(&self.procs, b);
                let v = match op {
                    Alu::Add => x.wrapping_add(y),
                    Alu::Sub => x.wrapping_sub(y),
                    Alu::Mul => x.wrapping_mul(y),
                    Alu::Div => {
                        if y == 0 {
                            return Err(self.rt(pid, "division by zero"));
                        }
                        x.wrapping_div(y)
                    }
                    Alu::Rem => {
                        if y == 0 {
                            return Err(self.rt(pid, "remainder by zero"));
                        }
                        x.wrapping_rem(y)
                    }
                    Alu::Eq => (x == y) as i32,
                    Alu::Ne => (x != y) as i32,
                    Alu::Lt => (x < y) as i32,
                    Alu::Le => (x <= y) as i32,
                    Alu::Gt => (x > y) as i32,
                    Alu::Ge => (x >= y) as i32,
                    Alu::BitAnd => x & y,
                    Alu::BitOr => x | y,
                    Alu::BitXor => x ^ y,
                    Alu::Shl => x.wrapping_shl((y & 31) as u32),
                    Alu::Shr => x.wrapping_shr((y & 31) as u32),
                };
                self.procs[p].frames.last_mut().unwrap().regs[dst as usize] = v;
            }
            Instr::Neg { dst, src } => {
                let v = regs(&self.procs, src).wrapping_neg();
                self.procs[p].frames.last_mut().unwrap().regs[dst as usize] = v;
            }
            Instr::Not { dst, src } => {
                let v = (regs(&self.procs, src) == 0) as i32;
                self.procs[p].frames.last_mut().unwrap().regs[dst as usize] = v;
            }
            Instr::Jmp { target } => {
                self.procs[p].frames.last_mut().unwrap().pc = target;
            }
            Instr::Jz { src, target } => {
                if regs(&self.procs, src) == 0 {
                    self.procs[p].frames.last_mut().unwrap().pc = target;
                }
            }
            Instr::Jnz { src, target } => {
                if regs(&self.procs, src) != 0 {
                    self.procs[p].frames.last_mut().unwrap().pc = target;
                }
            }
            Instr::Ld { dst, acc } => {
                let v = self.access(p, &acc, false, 0, sink)?;
                self.procs[p].frames.last_mut().unwrap().regs[dst as usize] = v;
            }
            Instr::St { src, acc } => {
                let v = regs(&self.procs, src);
                self.access(p, &acc, true, v, sink)?;
            }
            Instr::Call { func, args, dst } => {
                let fc = self.code.func(func);
                let mut regs_new = vec![0i32; fc.num_regs as usize];
                for (i, &r) in args.iter().enumerate() {
                    regs_new[i] = regs(&self.procs, r);
                }
                if self.procs[p].frames.len() > 256 {
                    return Err(self.rt(pid, "call stack overflow"));
                }
                self.procs[p].frames.push(Frame {
                    func,
                    pc: 0,
                    regs: regs_new,
                    ret_dst: dst,
                    is_body: false,
                });
            }
            Instr::Ret { src } => {
                let v = src.map(|r| regs(&self.procs, r));
                return self.do_ret(p, v);
            }
            Instr::Barrier => {
                self.procs[p].state = ProcState::AtBarrier;
                self.barrier_arrived += 1;
            }
            Instr::LockAcq { acc } => {
                let (resolved, _) = self.resolve(p, &acc)?;
                let Resolved::Direct(word) = resolved else {
                    return Err(self.rt(pid, "lock storage cannot be indirected"));
                };
                // Test: read the lock word.
                self.emit(p, word, false, sink);
                if self.mem[word as usize] == 0 {
                    self.emit(p, word, true, sink);
                    self.mem[word as usize] = 1;
                    self.stats.lock_acquires += 1;
                    if let Some(&from) = self.lock_releaser.get(&word) {
                        if from != pid {
                            sink.handoff(from, pid);
                        }
                    }
                } else {
                    self.procs[p].state = ProcState::Spin {
                        addr: word * WORD_BYTES,
                        rounds: 1,
                    };
                }
            }
            Instr::LockRel { acc } => {
                let (resolved, _) = self.resolve(p, &acc)?;
                let Resolved::Direct(word) = resolved else {
                    return Err(self.rt(pid, "lock storage cannot be indirected"));
                };
                self.emit(p, word, true, sink);
                self.mem[word as usize] = 0;
                self.lock_releaser.insert(word, pid);
            }
            Instr::Prand { dst, src } => {
                let x = regs(&self.procs, src);
                let h = splitmix64(self.cfg.seed ^ (x as u32 as u64));
                self.procs[p].frames.last_mut().unwrap().regs[dst as usize] =
                    (h & 0x3fff_ffff) as i32;
            }
            Instr::Min { dst, a, b } => {
                let v = regs(&self.procs, a).min(regs(&self.procs, b));
                self.procs[p].frames.last_mut().unwrap().regs[dst as usize] = v;
            }
            Instr::Max { dst, a, b } => {
                let v = regs(&self.procs, a).max(regs(&self.procs, b));
                self.procs[p].frames.last_mut().unwrap().regs[dst as usize] = v;
            }
            Instr::Abs { dst, src } => {
                let v = regs(&self.procs, src).wrapping_abs();
                self.procs[p].frames.last_mut().unwrap().regs[dst as usize] = v;
            }
            Instr::Spawn {
                body_func,
                pdv_slot,
            } => {
                let master_regs = self.procs[p].frames.last().unwrap().regs.clone();
                let fc = self.code.func(body_func);
                for q in 0..self.procs.len() {
                    let mut regs_new = vec![0i32; fc.num_regs as usize];
                    let n = master_regs.len().min(regs_new.len());
                    regs_new[..n].copy_from_slice(&master_regs[..n]);
                    regs_new[pdv_slot as usize] = self.procs[q].pid as i32;
                    let frame = Frame {
                        func: body_func,
                        pc: 0,
                        regs: regs_new,
                        ret_dst: None,
                        is_body: true,
                    };
                    self.procs[q].frames.push(frame);
                    self.procs[q].state = ProcState::Run;
                }
                let all: Vec<u32> = self.procs.iter().map(|q| q.pid).collect();
                sink.sync(&all);
            }
        }
        Ok(())
    }

    fn do_ret(&mut self, p: usize, v: Option<i32>) -> Result<(), RuntimeError> {
        let frame = self.procs[p].frames.pop().unwrap();
        if frame.is_body {
            // End of the parallel body.
            if self.procs[p].pid == 0 {
                self.procs[p].state = ProcState::Joining;
            } else {
                self.procs[p].state = ProcState::Idle;
            }
            return Ok(());
        }
        if self.procs[p].frames.is_empty() {
            // main returned.
            self.procs[p].state = ProcState::Done;
            return Ok(());
        }
        if let (Some(dst), Some(v)) = (frame.ret_dst, v) {
            let fr = self.procs[p].frames.last_mut().unwrap();
            fr.regs[dst as usize] = v;
        } else if let Some(dst) = frame.ret_dst {
            // Void return into an expression slot: defined as 0.
            let fr = self.procs[p].frames.last_mut().unwrap();
            fr.regs[dst as usize] = 0;
        }
        Ok(())
    }
}

/// Final memory image and statistics.
#[derive(Debug)]
pub struct FinalState {
    pub mem: Vec<i32>,
    pub stats: RunStats,
}

impl FinalState {
    /// Logical value of every element word of every object — used by the
    /// semantics-preservation tests: for any layout plan, these values
    /// must be identical.
    pub fn logical_snapshot(&self, prog: &Program, layout: &Layout) -> BTreeMap<u32, Vec<i32>> {
        let mut out = BTreeMap::new();
        for (i, obj) in prog.objects.iter().enumerate() {
            let oid = ObjId(i as u32);
            let words = prog.elem_words(obj.elem);
            let nproc_copies = if obj.is_shared() { 1 } else { layout.nproc };
            let mut vals = Vec::new();
            for pid in 0..nproc_copies {
                for e in 0..layout.elem_count(oid) {
                    for w in 0..words {
                        let field_sel = field_sel_for_word(prog, obj, w);
                        let r = layout.resolve(oid, e, field_sel, pid);
                        let v = match r {
                            Resolved::Direct(a) => self.mem[a as usize],
                            Resolved::Indirect { ptr, off, .. } => {
                                let t = self.mem[ptr as usize];
                                if t == 0 {
                                    0
                                } else {
                                    self.mem[(t as u32 + off) as usize]
                                }
                            }
                        };
                        vals.push(v);
                    }
                }
            }
            out.insert(i as u32, vals);
        }
        out
    }
}

/// Map a word offset within an element to its field selector.
fn field_sel_for_word(
    prog: &Program,
    obj: &fsr_lang::ast::ObjectDecl,
    w: u32,
) -> Option<(fsr_lang::ast::FieldId, u32)> {
    match obj.elem {
        fsr_lang::ast::ElemTy::Int => None,
        fsr_lang::ast::ElemTy::Struct(sid) => {
            let s = prog.struct_(sid);
            for (fi, f) in s.fields.iter().enumerate() {
                if w >= f.offset_words && w < f.offset_words + f.len {
                    return Some((fsr_lang::ast::FieldId(fi as u32), w - f.offset_words));
                }
            }
            None
        }
    }
}
