//! The SPMD virtual machine.
//!
//! All logical processes execute in lock-step rounds: each runnable
//! process executes one instruction per round (the standard interleaving
//! assumption of trace-driven multiprocessor simulation). Barriers block
//! until every active process arrives; locks are test-and-set words whose
//! spin rereads are *emitted into the trace* (that traffic is what lock
//! padding addresses). Memory reference events stream to a [`TraceSink`]
//! as they happen, with a `gap` carrying the compute cycles (instruction
//! count) since the process's previous reference.

use crate::bytecode::*;
use fsr_lang::ast::{ObjId, Program, WORD_BYTES};
use fsr_layout::{Arena, Layout, Resolved};
use std::collections::BTreeMap;

/// One shared-memory reference event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    pub pid: u8,
    /// Byte address.
    pub addr: u32,
    pub write: bool,
    /// Compute cycles (executed instructions) since this process's
    /// previous memory reference.
    pub gap: u32,
}

/// Consumer of the reference stream.
pub trait TraceSink {
    fn access(&mut self, r: MemRef);

    /// Clock synchronization: the listed processes reached a
    /// synchronization point together (barrier release, process
    /// spawn/join). Timing models align their clocks; analyses that only
    /// count references may ignore it.
    fn sync(&mut self, pids: &[u32]) {
        let _ = pids;
    }

    /// Lock hand-off: `to` acquired a lock last released by `from`.
    /// Timing models order the acquirer after the releaser.
    fn handoff(&mut self, from: u32, to: u32) {
        let _ = (from, to);
    }

    /// Work steal: worker `thief` took its next task from worker
    /// `victim`'s deque. The thief reads the deque top the victim
    /// published, so this orders the thief after the victim (a
    /// happens-before edge, like a hand-off). Only emitted under
    /// [`Schedule::WorkSteal`]; round-robin traces never contain it.
    fn steal(&mut self, thief: u32, victim: u32) {
        let _ = (thief, victim);
    }
}

/// Count-only sink.
#[derive(Debug, Default, Clone)]
pub struct CountingSink {
    pub refs: u64,
    pub writes: u64,
}

impl TraceSink for CountingSink {
    fn access(&mut self, r: MemRef) {
        self.refs += 1;
        self.writes += r.write as u64;
    }
}

/// Buffer sink for tests and small traces.
#[derive(Debug, Default, Clone)]
pub struct VecSink(pub Vec<MemRef>);

impl TraceSink for VecSink {
    fn access(&mut self, r: MemRef) {
        self.0.push(r);
    }
}

/// Fan-out sink: forwards every trace event to each inner sink in order.
///
/// This is the "trace once, simulate many" primitive: the interpreter is
/// sink-agnostic, so one interpretation can drive N cache simulators (one
/// per block size) plus timing models simultaneously, producing exactly
/// the event stream each would have seen in its own run.
#[derive(Debug, Default)]
pub struct TeeSink<S: TraceSink> {
    pub sinks: Vec<S>,
}

impl<S: TraceSink> TeeSink<S> {
    pub fn new(sinks: Vec<S>) -> Self {
        TeeSink { sinks }
    }

    pub fn into_inner(self) -> Vec<S> {
        self.sinks
    }
}

impl<S: TraceSink> TraceSink for TeeSink<S> {
    fn access(&mut self, r: MemRef) {
        for s in &mut self.sinks {
            s.access(r);
        }
    }

    fn sync(&mut self, pids: &[u32]) {
        for s in &mut self.sinks {
            s.sync(pids);
        }
    }

    fn handoff(&mut self, from: u32, to: u32) {
        for s in &mut self.sinks {
            s.handoff(from, to);
        }
    }

    fn steal(&mut self, thief: u32, victim: u32) {
        for s in &mut self.sinks {
            s.steal(thief, victim);
        }
    }
}

/// One recorded trace event (access, barrier sync, lock hand-off, or
/// work steal).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    Access(MemRef),
    Sync(Vec<u32>),
    Handoff { from: u32, to: u32 },
    Steal { thief: u32, victim: u32 },
}

impl TraceEvent {
    /// Number of event kinds. Accounting tests assert every kind has a
    /// name and a dense index, so adding a variant without updating the
    /// counters that consume the stream fails loudly.
    pub const KIND_COUNT: usize = 4;

    /// All kind names, indexed by [`TraceEvent::kind_index`].
    pub const KIND_NAMES: [&'static str; Self::KIND_COUNT] = ["access", "sync", "handoff", "steal"];

    /// Dense index of this event's kind.
    pub fn kind_index(&self) -> usize {
        match self {
            TraceEvent::Access(_) => 0,
            TraceEvent::Sync(_) => 1,
            TraceEvent::Handoff { .. } => 2,
            TraceEvent::Steal { .. } => 3,
        }
    }

    /// Name of this event's kind.
    pub fn kind_name(&self) -> &'static str {
        Self::KIND_NAMES[self.kind_index()]
    }
}

/// Sink that records the full event stream for later replay.
///
/// Recording costs memory proportional to the trace, so the batched
/// driver prefers [`TeeSink`] (replay-free fan-out); `RecordedTrace` is
/// for cases where consumers cannot all be constructed up front.
#[derive(Debug, Default, Clone)]
pub struct RecordedTrace {
    pub events: Vec<TraceEvent>,
}

impl RecordedTrace {
    /// Feed the recorded stream into another sink, in original order.
    pub fn replay(&self, sink: &mut dyn TraceSink) {
        for e in &self.events {
            match e {
                TraceEvent::Access(r) => sink.access(*r),
                TraceEvent::Sync(pids) => sink.sync(pids),
                TraceEvent::Handoff { from, to } => sink.handoff(*from, *to),
                TraceEvent::Steal { thief, victim } => sink.steal(*thief, *victim),
            }
        }
    }
}

impl TraceSink for RecordedTrace {
    fn access(&mut self, r: MemRef) {
        self.events.push(TraceEvent::Access(r));
    }

    fn sync(&mut self, pids: &[u32]) {
        self.events.push(TraceEvent::Sync(pids.to_vec()));
    }

    fn handoff(&mut self, from: u32, to: u32) {
        self.events.push(TraceEvent::Handoff { from, to });
    }

    fn steal(&mut self, thief: u32, victim: u32) {
        self.events.push(TraceEvent::Steal { thief, victim });
    }
}

/// Process-wide count of interpreter runs started, for tests and batch
/// accounting: trace-sharing optimizations can assert that N jobs really
/// cost one interpretation.
static RUNS_STARTED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Total interpreter runs started in this process.
pub fn runs_started() -> u64 {
    RUNS_STARTED.load(std::sync::atomic::Ordering::Relaxed)
}

/// Run-time error (index out of bounds, division by zero, deadlock,
/// step-limit exhaustion, arena overflow).
#[derive(Debug, Clone)]
pub struct RuntimeError {
    pub pid: u32,
    pub msg: String,
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "runtime error on process {}: {}", self.pid, self.msg)
    }
}

impl std::error::Error for RuntimeError {}

/// Scheduling policy for mapping logical processes onto workers.
///
/// `PartialEq`/`Hash`/`Debug` matter: the schedule (kind *and* seed) is
/// part of every trace-group fingerprint and cache key — two jobs that
/// differ only in the work-stealing seed produce different traces and
/// must never share a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Schedule {
    /// The paper's fixed interleaving: worker `p` always executes
    /// logical process `p`, one instruction per round, in pid order.
    #[default]
    RoundRobin,
    /// Randomized work stealing: each worker owns a deque of runnable
    /// tasks, pops its own back, and steals from a seeded-random
    /// victim's front when empty. Steals migrate a task's working set
    /// between caches and are recorded as [`TraceEvent::Steal`]. Fully
    /// deterministic for a fixed seed.
    WorkSteal { seed: u64 },
}

/// Interpreter configuration.
///
/// `PartialEq`/`Hash` matter: the batched driver groups jobs whose
/// (layout, run config) pairs are identical, because those produce
/// identical traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunConfig {
    /// Seed for the `prand` builtin (identical across layouts so control
    /// flow is layout-independent).
    pub seed: u64,
    /// Abort after this many total executed instructions.
    pub max_steps: u64,
    /// While blocked on a lock, emit a spin reread every this many rounds.
    pub spin_probe_period: u32,
    /// Scheduling policy (kind + seed). Part of the trace identity.
    pub schedule: Schedule,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 0x5eed_cafe,
            max_steps: 2_000_000_000,
            spin_probe_period: 2,
            schedule: Schedule::RoundRobin,
        }
    }
}

/// Execution statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    pub instructions: u64,
    pub refs: u64,
    pub spin_rereads: u64,
    pub barriers_crossed: u64,
    pub lock_acquires: u64,
    /// Work-steal events (always 0 under [`Schedule::RoundRobin`]).
    pub steals: u64,
}

#[derive(Debug, Clone, PartialEq)]
enum ProcState {
    Run,
    AtBarrier,
    /// Spinning on a lock word at this byte address.
    Spin {
        addr: u32,
        rounds: u32,
    },
    /// Master waiting for children to finish the parallel region.
    Joining,
    /// Child finished its body.
    Idle,
    Done,
}

struct Frame {
    func: u32,
    pc: u32,
    regs: Vec<i32>,
    ret_dst: Option<Reg>,
    is_body: bool,
}

struct Proc {
    pid: u32,
    frames: Vec<Frame>,
    state: ProcState,
    gap: u32,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// One scheduling decision within a lock-step round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// Worker `worker` gets one turn with task `task`: execute one
    /// instruction if it is runnable, otherwise service its blocked
    /// state (barrier arrival, spin probe, join check).
    Visit { worker: u32, task: usize },
    /// Service task `task`'s blocked state only (never execute). Used
    /// for tasks that no worker currently holds.
    Poll { task: usize },
    /// The round is over; the VM checks progress/deadlock and a new
    /// round begins.
    EndRound,
}

/// A scheduling policy: decides, slot by slot, which worker gets which
/// task each round. The VM drives the policy pull-style so decisions
/// always see live process states, and notifies it when tasks block or
/// become runnable.
///
/// Each task receives at most one slot per round (the lock-step
/// invariant), so a schedule can reorder *who* runs *where*, never how
/// much anyone runs.
pub trait Scheduler {
    /// Produce the next slot of the current round. A work-stealing
    /// policy records its steal events here (into `sink`/`stats`), at
    /// the moment the steal happens, so the trace interleaves steals
    /// with the accesses they cause.
    fn next(&mut self, sink: &mut dyn TraceSink, stats: &mut RunStats) -> Slot;

    /// Task `task` just executed one instruction on `worker`;
    /// `still_run` says whether it remains runnable.
    fn stepped(&mut self, task: usize, worker: u32, still_run: bool);

    /// A blocked (or fresh) `task` became runnable; `worker` is the
    /// worker that last executed it (its cache holds the working set).
    fn unblocked(&mut self, task: usize, worker: u32);
}

/// The paper's fixed interleaving: worker `p` visits task `p`, in pid
/// order, every round. Produces exactly the event stream the original
/// scheduler-less VM produced.
#[derive(Debug)]
pub struct RoundRobin {
    n: usize,
    cursor: usize,
}

impl RoundRobin {
    pub fn new(n: usize) -> Self {
        RoundRobin { n, cursor: 0 }
    }
}

impl Scheduler for RoundRobin {
    fn next(&mut self, _sink: &mut dyn TraceSink, _stats: &mut RunStats) -> Slot {
        if self.cursor == self.n {
            self.cursor = 0;
            return Slot::EndRound;
        }
        let p = self.cursor;
        self.cursor += 1;
        Slot::Visit {
            worker: p as u32,
            task: p,
        }
    }

    fn stepped(&mut self, _task: usize, _worker: u32, _still_run: bool) {}

    fn unblocked(&mut self, _task: usize, _worker: u32) {}
}

/// Seeded randomized work stealing over per-worker deques.
///
/// Each round, worker `w` pops the back of its own deque; if empty it
/// draws seeded-random victims and steals the *front* of a non-empty
/// victim deque (FIFO steal end, LIFO owner end — the classic deque
/// discipline), emitting a [`TraceEvent::Steal`]. A task keeps at most
/// one slot per round, so a steal migrates work without duplicating
/// it; blocked tasks leave the deques and re-enter at the deque of the
/// worker that last ran them. Everything is driven by one splitmix64
/// stream from `seed`, so a fixed seed reproduces the schedule —
/// steals, migrations, trace — bit-identically.
#[derive(Debug)]
pub struct WorkSteal {
    n: usize,
    rng: u64,
    deques: Vec<std::collections::VecDeque<usize>>,
    in_deque: Vec<bool>,
    /// Tasks that already had their slot this round (lock-step cap).
    had_slot: Vec<bool>,
    wcur: usize,
    pcur: usize,
}

impl WorkSteal {
    pub fn new(n: usize, seed: u64) -> Self {
        WorkSteal {
            n,
            rng: splitmix64(seed),
            deques: vec![std::collections::VecDeque::new(); n],
            in_deque: vec![false; n],
            had_slot: vec![false; n],
            wcur: 0,
            pcur: 0,
        }
    }
}

impl Scheduler for WorkSteal {
    fn next(&mut self, sink: &mut dyn TraceSink, stats: &mut RunStats) -> Slot {
        // Phase A: each worker takes one task — own deque first, then
        // steal. A task pushed back after running this round is fenced
        // by `had_slot`, so no task runs twice per round.
        while self.wcur < self.n {
            let w = self.wcur;
            self.wcur += 1;
            if let Some(&t) = self.deques[w].back() {
                if !self.had_slot[t] {
                    self.deques[w].pop_back();
                    self.in_deque[t] = false;
                    self.had_slot[t] = true;
                    return Slot::Visit {
                        worker: w as u32,
                        task: t,
                    };
                }
                continue;
            }
            for _ in 0..2 * self.n {
                self.rng = splitmix64(self.rng);
                let v = (self.rng % self.n as u64) as usize;
                if v == w {
                    continue;
                }
                if let Some(&t) = self.deques[v].front() {
                    if !self.had_slot[t] {
                        self.deques[v].pop_front();
                        self.in_deque[t] = false;
                        self.had_slot[t] = true;
                        stats.steals += 1;
                        sink.steal(w as u32, v as u32);
                        return Slot::Visit {
                            worker: w as u32,
                            task: t,
                        };
                    }
                }
            }
        }
        // Phase B: service blocked tasks (not in any deque) in pid
        // order, so barrier releases and lock acquisitions stay
        // deterministic.
        while self.pcur < self.n {
            let p = self.pcur;
            self.pcur += 1;
            if !self.in_deque[p] && !self.had_slot[p] {
                return Slot::Poll { task: p };
            }
        }
        self.wcur = 0;
        self.pcur = 0;
        self.had_slot.iter_mut().for_each(|s| *s = false);
        Slot::EndRound
    }

    fn stepped(&mut self, task: usize, worker: u32, still_run: bool) {
        if still_run {
            self.deques[worker as usize].push_back(task);
            self.in_deque[task] = true;
        }
    }

    fn unblocked(&mut self, task: usize, worker: u32) {
        self.deques[worker as usize].push_back(task);
        self.in_deque[task] = true;
    }
}

/// The interpreter for one (program, layout) configuration.
pub struct Interp<'a> {
    layout: &'a Layout,
    code: &'a Compiled,
    dims: Vec<Vec<u32>>,
    mem: Vec<i32>,
    arenas: Vec<Arena>,
    procs: Vec<Proc>,
    cfg: RunConfig,
    stats: RunStats,
    barrier_arrived: u32,
    /// Last releaser of each lock word (for hand-off ordering), in
    /// worker-id space: the cache that last owned the lock line.
    lock_releaser: std::collections::HashMap<u32, u32>,
    /// Worker currently (or last) executing each task. Trace events are
    /// attributed to workers — the caches references actually go
    /// through — so a stolen task's working set migrates in the trace.
    /// Under round-robin `worker_of[p] == p` always.
    worker_of: Vec<u32>,
    /// Tasks that became runnable during the current slot; drained to
    /// the scheduler after the slot completes.
    woke: Vec<u32>,
    /// Emit barrier syncs over *all* workers instead of the released
    /// pids: under work stealing a released task may resume on any
    /// worker, so only a global clock alignment is sound.
    sync_all: bool,
}

impl<'a> Interp<'a> {
    pub fn new(prog: &Program, layout: &'a Layout, code: &'a Compiled, cfg: RunConfig) -> Self {
        RUNS_STARTED.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let nproc = layout.nproc;
        let main_fc = code.func(code.main);
        let mut procs: Vec<Proc> = (0..nproc)
            .map(|pid| Proc {
                pid,
                frames: Vec::new(),
                state: ProcState::Idle,
                gap: 0,
            })
            .collect();
        procs[0].frames.push(Frame {
            func: code.main,
            pc: 0,
            regs: vec![0; main_fc.num_regs as usize],
            ret_dst: None,
            is_body: false,
        });
        procs[0].state = ProcState::Run;
        Interp {
            layout,
            code,
            dims: prog.objects.iter().map(|o| o.dims.clone()).collect(),
            mem: vec![0; layout.total_words() as usize],
            arenas: layout.arenas.iter().map(Arena::new).collect(),
            procs,
            cfg,
            stats: RunStats::default(),
            barrier_arrived: 0,
            lock_releaser: std::collections::HashMap::new(),
            worker_of: (0..nproc).collect(),
            woke: Vec::new(),
            sync_all: cfg.schedule != Schedule::RoundRobin,
        }
    }

    fn rt(&self, pid: u32, msg: impl Into<String>) -> RuntimeError {
        RuntimeError {
            pid,
            msg: msg.into(),
        }
    }

    /// Resolve an access spec against the registers of the current frame.
    fn resolve(&self, p: usize, acc: &AccessSpec) -> Result<(Resolved, u64), RuntimeError> {
        let pid = self.procs[p].pid;
        let frame = self.procs[p].frames.last().unwrap();
        let dims = &self.dims[acc.obj.index()];
        let mut flat: u64 = 0;
        for (k, &r) in acc.idx.iter().enumerate() {
            let v = frame.regs[r as usize];
            if v < 0 || v as u64 >= dims[k] as u64 {
                return Err(self.rt(
                    pid,
                    format!(
                        "index {} out of bounds 0..{} (dim {k}, object {})",
                        v, dims[k], acc.obj.0
                    ),
                ));
            }
            flat = flat * dims[k] as u64 + v as u64;
        }
        let field_sel = match &acc.field {
            None => None,
            Some((f, fr)) => {
                let (_, len) = self.layout.field_layout(acc.obj, *f);
                let fi = match fr {
                    None => 0,
                    Some(r) => {
                        let v = frame.regs[*r as usize];
                        if v < 0 || v as u32 >= len {
                            return Err(
                                self.rt(pid, format!("field index {v} out of bounds 0..{len}"))
                            );
                        }
                        v as u32
                    }
                };
                Some((*f, fi))
            }
        };
        Ok((self.layout.resolve(acc.obj, flat, field_sel, pid), flat))
    }

    /// Perform a data access (load or store), emitting trace events.
    fn access(
        &mut self,
        p: usize,
        acc: &AccessSpec,
        write: bool,
        value: i32,
        sink: &mut dyn TraceSink,
    ) -> Result<i32, RuntimeError> {
        let pid = self.procs[p].pid;
        let (resolved, _flat) = self.resolve(p, acc)?;
        let word = match resolved {
            Resolved::Direct(w) => w,
            Resolved::Indirect {
                ptr,
                off,
                slot_words,
                arena,
                lane,
            } => {
                // Pointer read.
                self.emit(p, ptr, false, sink);
                let mut target = self.mem[ptr as usize];
                if target == 0 {
                    // First touch: allocate in the toucher's arena lane.
                    let slot = self.arenas[arena as usize]
                        .alloc(pid, lane, slot_words)
                        .ok_or_else(|| self.rt(pid, "indirection arena exhausted"))?;
                    self.mem[ptr as usize] = slot as i32;
                    self.emit(p, ptr, true, sink);
                    target = slot as i32;
                }
                target as u32 + off
            }
        };
        self.emit(p, word, write, sink);
        if write {
            self.mem[word as usize] = value;
            Ok(value)
        } else {
            Ok(self.mem[word as usize])
        }
    }

    fn emit(&mut self, p: usize, word_addr: u32, write: bool, sink: &mut dyn TraceSink) {
        let gap = self.procs[p].gap;
        self.procs[p].gap = 0;
        self.stats.refs += 1;
        sink.access(MemRef {
            pid: self.worker_of[p] as u8,
            addr: word_addr * WORD_BYTES,
            write,
            gap,
        });
    }

    fn active_count(&self) -> u32 {
        self.procs
            .iter()
            .filter(|p| {
                matches!(
                    p.state,
                    ProcState::Run | ProcState::AtBarrier | ProcState::Spin { .. }
                )
            })
            .count() as u32
    }

    /// Run to completion under the configured schedule, streaming
    /// references into `sink`.
    pub fn run(self, sink: &mut dyn TraceSink) -> Result<FinalState, RuntimeError> {
        let n = self.procs.len();
        match self.cfg.schedule {
            Schedule::RoundRobin => self.run_with(&mut RoundRobin::new(n), sink),
            Schedule::WorkSteal { seed } => self.run_with(&mut WorkSteal::new(n, seed), sink),
        }
    }

    /// Run to completion under an explicit scheduling policy.
    ///
    /// With [`RoundRobin`] this produces, event for event, the stream
    /// the original fixed-interleaving loop produced: each round visits
    /// tasks in pid order with worker == pid, and the slot handler is
    /// the same per-state code the old loop inlined.
    pub fn run_with(
        mut self,
        sched: &mut dyn Scheduler,
        sink: &mut dyn TraceSink,
    ) -> Result<FinalState, RuntimeError> {
        // Hand the scheduler the initially-runnable tasks (process 0).
        for p in 0..self.procs.len() {
            if self.procs[p].state == ProcState::Run {
                sched.unblocked(p, self.worker_of[p]);
            }
        }
        let mut progressed = false;
        while !matches!(self.procs[0].state, ProcState::Done) {
            match sched.next(sink, &mut self.stats) {
                Slot::Visit { worker, task } => {
                    if self.procs[task].state == ProcState::Run {
                        self.worker_of[task] = worker;
                        self.step(task, sink)?;
                        progressed = true;
                        let still_run = self.procs[task].state == ProcState::Run;
                        sched.stepped(task, worker, still_run);
                    } else {
                        progressed |= self.poll(task, sink);
                    }
                    self.drain_woke(sched);
                }
                Slot::Poll { task } => {
                    progressed |= self.poll(task, sink);
                    self.drain_woke(sched);
                }
                Slot::EndRound => {
                    if !progressed {
                        // Barrier release is handled in the slots;
                        // reaching here without a pending release means
                        // a real deadlock (e.g. everyone spinning on a
                        // held lock whose holder is blocked).
                        if self.barrier_arrived >= self.active_count() && self.barrier_arrived > 0 {
                            // Release fires next round.
                        } else {
                            return Err(self.rt(0, "deadlock: no process can make progress"));
                        }
                    }
                    if self.stats.instructions > self.cfg.max_steps {
                        return Err(self.rt(0, "step limit exceeded (infinite loop?)"));
                    }
                    progressed = false;
                }
            }
        }
        Ok(FinalState {
            mem: self.mem,
            stats: self.stats,
        })
    }

    /// Report tasks that became runnable during the last slot.
    fn drain_woke(&mut self, sched: &mut dyn Scheduler) {
        for i in 0..self.woke.len() {
            let q = self.woke[i] as usize;
            sched.unblocked(q, self.worker_of[q]);
        }
        self.woke.clear();
    }

    /// Service one blocked task: barrier arrival, spin probe, or join
    /// check. Returns whether anything progressed.
    fn poll(&mut self, p: usize, sink: &mut dyn TraceSink) -> bool {
        match self.procs[p].state {
            ProcState::AtBarrier => {
                if self.barrier_arrived >= self.active_count() {
                    // Release everyone at the barrier.
                    let mut released = Vec::new();
                    for q in self.procs.iter_mut() {
                        if q.state == ProcState::AtBarrier {
                            q.state = ProcState::Run;
                            released.push(q.pid);
                        }
                    }
                    self.barrier_arrived = 0;
                    self.stats.barriers_crossed += 1;
                    self.woke.extend_from_slice(&released);
                    if self.sync_all {
                        let all: Vec<u32> = (0..self.procs.len() as u32).collect();
                        sink.sync(&all);
                    } else {
                        sink.sync(&released);
                    }
                    !released.is_empty()
                } else {
                    false
                }
            }
            ProcState::Spin { addr, rounds } => {
                // Test the lock word; reread goes into the trace every
                // probe period, charged to the worker that last ran the
                // task (its cache is doing the spinning).
                let word = addr / WORD_BYTES;
                let probe = rounds % self.cfg.spin_probe_period == 0;
                if probe {
                    self.emit(p, word, false, sink);
                    self.stats.spin_rereads += 1;
                }
                if self.mem[word as usize] == 0 {
                    // Acquire: read saw it free; now test-and-set.
                    self.emit(p, word, true, sink);
                    self.mem[word as usize] = 1;
                    self.stats.lock_acquires += 1;
                    let me = self.worker_of[p];
                    if let Some(&from) = self.lock_releaser.get(&word) {
                        if from != me {
                            sink.handoff(from, me);
                        }
                    }
                    self.procs[p].state = ProcState::Run;
                    self.woke.push(self.procs[p].pid);
                    true
                } else {
                    self.procs[p].state = ProcState::Spin {
                        addr,
                        rounds: rounds + 1,
                    };
                    false
                }
            }
            ProcState::Joining => {
                let all_idle = self.procs.iter().all(|q| {
                    q.pid == self.procs[p].pid
                        || matches!(q.state, ProcState::Idle | ProcState::Done)
                });
                if all_idle {
                    self.procs[p].state = ProcState::Run;
                    self.woke.push(self.procs[p].pid);
                    let all: Vec<u32> = self.procs.iter().map(|q| q.pid).collect();
                    sink.sync(&all);
                    true
                } else {
                    false
                }
            }
            ProcState::Run | ProcState::Idle | ProcState::Done => false,
        }
    }

    /// Execute one instruction of process `p`.
    fn step(&mut self, p: usize, sink: &mut dyn TraceSink) -> Result<(), RuntimeError> {
        self.stats.instructions += 1;
        self.procs[p].gap = self.procs[p].gap.saturating_add(1);
        let pid = self.procs[p].pid;
        let frame = self.procs[p].frames.last().unwrap();
        let fc = self.code.func(frame.func);
        if frame.pc as usize >= fc.code.len() {
            return self.do_ret(p, None);
        }
        let instr = fc.code[frame.pc as usize].clone();
        // Default: advance pc; jumps overwrite it.
        self.procs[p].frames.last_mut().unwrap().pc += 1;
        let regs = |procs: &Vec<Proc>, r: Reg| procs[p].frames.last().unwrap().regs[r as usize];
        match instr {
            Instr::Const { dst, v } => {
                self.procs[p].frames.last_mut().unwrap().regs[dst as usize] = v;
            }
            Instr::Mov { dst, src } => {
                let v = regs(&self.procs, src);
                self.procs[p].frames.last_mut().unwrap().regs[dst as usize] = v;
            }
            Instr::Bin { op, dst, a, b } => {
                let x = regs(&self.procs, a);
                let y = regs(&self.procs, b);
                let v = match op {
                    Alu::Add => x.wrapping_add(y),
                    Alu::Sub => x.wrapping_sub(y),
                    Alu::Mul => x.wrapping_mul(y),
                    Alu::Div => {
                        if y == 0 {
                            return Err(self.rt(pid, "division by zero"));
                        }
                        x.wrapping_div(y)
                    }
                    Alu::Rem => {
                        if y == 0 {
                            return Err(self.rt(pid, "remainder by zero"));
                        }
                        x.wrapping_rem(y)
                    }
                    Alu::Eq => (x == y) as i32,
                    Alu::Ne => (x != y) as i32,
                    Alu::Lt => (x < y) as i32,
                    Alu::Le => (x <= y) as i32,
                    Alu::Gt => (x > y) as i32,
                    Alu::Ge => (x >= y) as i32,
                    Alu::BitAnd => x & y,
                    Alu::BitOr => x | y,
                    Alu::BitXor => x ^ y,
                    Alu::Shl => x.wrapping_shl((y & 31) as u32),
                    Alu::Shr => x.wrapping_shr((y & 31) as u32),
                };
                self.procs[p].frames.last_mut().unwrap().regs[dst as usize] = v;
            }
            Instr::Neg { dst, src } => {
                let v = regs(&self.procs, src).wrapping_neg();
                self.procs[p].frames.last_mut().unwrap().regs[dst as usize] = v;
            }
            Instr::Not { dst, src } => {
                let v = (regs(&self.procs, src) == 0) as i32;
                self.procs[p].frames.last_mut().unwrap().regs[dst as usize] = v;
            }
            Instr::Jmp { target } => {
                self.procs[p].frames.last_mut().unwrap().pc = target;
            }
            Instr::Jz { src, target } => {
                if regs(&self.procs, src) == 0 {
                    self.procs[p].frames.last_mut().unwrap().pc = target;
                }
            }
            Instr::Jnz { src, target } => {
                if regs(&self.procs, src) != 0 {
                    self.procs[p].frames.last_mut().unwrap().pc = target;
                }
            }
            Instr::Ld { dst, acc } => {
                let v = self.access(p, &acc, false, 0, sink)?;
                self.procs[p].frames.last_mut().unwrap().regs[dst as usize] = v;
            }
            Instr::St { src, acc } => {
                let v = regs(&self.procs, src);
                self.access(p, &acc, true, v, sink)?;
            }
            Instr::Call { func, args, dst } => {
                let fc = self.code.func(func);
                let mut regs_new = vec![0i32; fc.num_regs as usize];
                for (i, &r) in args.iter().enumerate() {
                    regs_new[i] = regs(&self.procs, r);
                }
                if self.procs[p].frames.len() > 256 {
                    return Err(self.rt(pid, "call stack overflow"));
                }
                self.procs[p].frames.push(Frame {
                    func,
                    pc: 0,
                    regs: regs_new,
                    ret_dst: dst,
                    is_body: false,
                });
            }
            Instr::Ret { src } => {
                let v = src.map(|r| regs(&self.procs, r));
                return self.do_ret(p, v);
            }
            Instr::Barrier => {
                self.procs[p].state = ProcState::AtBarrier;
                self.barrier_arrived += 1;
            }
            Instr::LockAcq { acc } => {
                let (resolved, _) = self.resolve(p, &acc)?;
                let Resolved::Direct(word) = resolved else {
                    return Err(self.rt(pid, "lock storage cannot be indirected"));
                };
                // Test: read the lock word.
                self.emit(p, word, false, sink);
                if self.mem[word as usize] == 0 {
                    self.emit(p, word, true, sink);
                    self.mem[word as usize] = 1;
                    self.stats.lock_acquires += 1;
                    let me = self.worker_of[p];
                    if let Some(&from) = self.lock_releaser.get(&word) {
                        if from != me {
                            sink.handoff(from, me);
                        }
                    }
                } else {
                    self.procs[p].state = ProcState::Spin {
                        addr: word * WORD_BYTES,
                        rounds: 1,
                    };
                }
            }
            Instr::LockRel { acc } => {
                let (resolved, _) = self.resolve(p, &acc)?;
                let Resolved::Direct(word) = resolved else {
                    return Err(self.rt(pid, "lock storage cannot be indirected"));
                };
                self.emit(p, word, true, sink);
                self.mem[word as usize] = 0;
                self.lock_releaser.insert(word, self.worker_of[p]);
            }
            Instr::Prand { dst, src } => {
                let x = regs(&self.procs, src);
                let h = splitmix64(self.cfg.seed ^ (x as u32 as u64));
                self.procs[p].frames.last_mut().unwrap().regs[dst as usize] =
                    (h & 0x3fff_ffff) as i32;
            }
            Instr::Min { dst, a, b } => {
                let v = regs(&self.procs, a).min(regs(&self.procs, b));
                self.procs[p].frames.last_mut().unwrap().regs[dst as usize] = v;
            }
            Instr::Max { dst, a, b } => {
                let v = regs(&self.procs, a).max(regs(&self.procs, b));
                self.procs[p].frames.last_mut().unwrap().regs[dst as usize] = v;
            }
            Instr::Abs { dst, src } => {
                let v = regs(&self.procs, src).wrapping_abs();
                self.procs[p].frames.last_mut().unwrap().regs[dst as usize] = v;
            }
            Instr::Spawn {
                body_func,
                pdv_slot,
            } => {
                let master_regs = self.procs[p].frames.last().unwrap().regs.clone();
                let fc = self.code.func(body_func);
                for q in 0..self.procs.len() {
                    let mut regs_new = vec![0i32; fc.num_regs as usize];
                    let n = master_regs.len().min(regs_new.len());
                    regs_new[..n].copy_from_slice(&master_regs[..n]);
                    regs_new[pdv_slot as usize] = self.procs[q].pid as i32;
                    let frame = Frame {
                        func: body_func,
                        pc: 0,
                        regs: regs_new,
                        ret_dst: None,
                        is_body: true,
                    };
                    self.procs[q].frames.push(frame);
                    if self.procs[q].state != ProcState::Run {
                        self.woke.push(self.procs[q].pid);
                    }
                    self.procs[q].state = ProcState::Run;
                }
                let all: Vec<u32> = self.procs.iter().map(|q| q.pid).collect();
                sink.sync(&all);
            }
        }
        Ok(())
    }

    fn do_ret(&mut self, p: usize, v: Option<i32>) -> Result<(), RuntimeError> {
        let frame = self.procs[p].frames.pop().unwrap();
        if frame.is_body {
            // End of the parallel body.
            if self.procs[p].pid == 0 {
                self.procs[p].state = ProcState::Joining;
            } else {
                self.procs[p].state = ProcState::Idle;
            }
            return Ok(());
        }
        if self.procs[p].frames.is_empty() {
            // main returned.
            self.procs[p].state = ProcState::Done;
            return Ok(());
        }
        if let (Some(dst), Some(v)) = (frame.ret_dst, v) {
            let fr = self.procs[p].frames.last_mut().unwrap();
            fr.regs[dst as usize] = v;
        } else if let Some(dst) = frame.ret_dst {
            // Void return into an expression slot: defined as 0.
            let fr = self.procs[p].frames.last_mut().unwrap();
            fr.regs[dst as usize] = 0;
        }
        Ok(())
    }
}

/// Final memory image and statistics.
#[derive(Debug)]
pub struct FinalState {
    pub mem: Vec<i32>,
    pub stats: RunStats,
}

impl FinalState {
    /// Logical value of every element word of every object — used by the
    /// semantics-preservation tests: for any layout plan, these values
    /// must be identical.
    pub fn logical_snapshot(&self, prog: &Program, layout: &Layout) -> BTreeMap<u32, Vec<i32>> {
        let mut out = BTreeMap::new();
        for (i, obj) in prog.objects.iter().enumerate() {
            let oid = ObjId(i as u32);
            let words = prog.elem_words(obj.elem);
            let nproc_copies = if obj.is_shared() { 1 } else { layout.nproc };
            let mut vals = Vec::new();
            for pid in 0..nproc_copies {
                for e in 0..layout.elem_count(oid) {
                    for w in 0..words {
                        let field_sel = field_sel_for_word(prog, obj, w);
                        let r = layout.resolve(oid, e, field_sel, pid);
                        let v = match r {
                            Resolved::Direct(a) => self.mem[a as usize],
                            Resolved::Indirect { ptr, off, .. } => {
                                let t = self.mem[ptr as usize];
                                if t == 0 {
                                    0
                                } else {
                                    self.mem[(t as u32 + off) as usize]
                                }
                            }
                        };
                        vals.push(v);
                    }
                }
            }
            out.insert(i as u32, vals);
        }
        out
    }
}

/// Map a word offset within an element to its field selector.
fn field_sel_for_word(
    prog: &Program,
    obj: &fsr_lang::ast::ObjectDecl,
    w: u32,
) -> Option<(fsr_lang::ast::FieldId, u32)> {
    match obj.elem {
        fsr_lang::ast::ElemTy::Int => None,
        fsr_lang::ast::ElemTy::Struct(sid) => {
            let s = prog.struct_(sid);
            for (fi, f) in s.fields.iter().enumerate() {
                if w >= f.offset_words && w < f.offset_words + f.len {
                    return Some((fsr_lang::ast::FieldId(fi as u32), w - f.offset_words));
                }
            }
            None
        }
    }
}
