//! Vector-clock happens-before race checking over interpreter traces.
//!
//! A [`TraceSink`] that replays the reference stream with per-process
//! vector clocks and flags word-level data races: two accesses to the
//! same word from different processes, at least one a write, with
//! neither ordered before the other by the trace's synchronization
//! events. Ordering comes from three edge kinds:
//!
//! - [`sync`](TraceSink::sync) — barrier releases and process
//!   spawn/join: every listed process's clock is joined and advanced.
//! - [`handoff`](TraceSink::handoff) — lock hand-offs: the acquirer
//!   joins the releaser's clock.
//! - [`steal`](TraceSink::steal) — work steals: the thief joins the
//!   victim's clock. The thief reads the deque slot the victim
//!   published when it last pushed the stolen task, so everything the
//!   victim did before the steal — in particular the stolen task's own
//!   prior writes, which happened on the victim worker — is ordered
//!   before everything the thief does with it afterwards.
//!
//! The hand-off edge over-approximates lock ordering: it orders *all*
//! of the releaser's prior events (not just those inside the critical
//! section) before the acquirer, so the checker can miss races that a
//! same-lock-different-data execution would expose. That direction is
//! deliberate — the checker validates *static race reports* against
//! traces, so it must not invent dynamic races out of lock ordering.
//! Lock words themselves always race at word level by construction
//! (every acquire is an unsynchronized test-and-set write); callers
//! filter them out via the layout's address attribution.

use crate::vm::{MemRef, TraceSink};
use std::collections::{BTreeMap, BTreeSet};

/// One word's last-access bookkeeping.
#[derive(Debug, Clone, Default)]
struct WordState {
    /// Last write: `(pid, epoch at write)`.
    write: Option<(u32, u32)>,
    /// Last read per process: epoch at read.
    reads: BTreeMap<u32, u32>,
}

/// Happens-before checker; feed it a trace, then ask for racy words.
#[derive(Debug, Clone)]
pub struct HbChecker {
    /// `vc[p][q]`: how far of process q's history process p has observed.
    vc: Vec<Vec<u32>>,
    words: BTreeMap<u32, WordState>,
    /// Word addresses (byte address of the word base) with a detected race.
    racy: BTreeSet<u32>,
    races_seen: u64,
}

impl HbChecker {
    pub fn new(nproc: usize) -> HbChecker {
        let mut vc = vec![vec![0u32; nproc]; nproc];
        for (p, row) in vc.iter_mut().enumerate() {
            row[p] = 1;
        }
        HbChecker {
            vc,
            words: BTreeMap::new(),
            racy: BTreeSet::new(),
            races_seen: 0,
        }
    }

    /// Byte addresses (word-aligned) of words with at least one race.
    pub fn racy_words(&self) -> &BTreeSet<u32> {
        &self.racy
    }

    /// Total number of racy access pairs observed (each unordered
    /// conflicting pair counts once at detection time).
    pub fn races_seen(&self) -> u64 {
        self.races_seen
    }

    pub fn is_clean(&self) -> bool {
        self.racy.is_empty()
    }

    /// Has process `p` observed event `(q, epoch)`?
    fn ordered(&self, p: usize, q: u32, epoch: u32) -> bool {
        q as usize == p || self.vc[p][q as usize] >= epoch
    }
}

impl TraceSink for HbChecker {
    fn access(&mut self, r: MemRef) {
        let p = r.pid as usize;
        if p >= self.vc.len() {
            return;
        }
        let word = r.addr & !3;
        let epoch = self.vc[p][p];
        let mut st = self.words.remove(&word).unwrap_or_default();
        let mut raced = false;
        // Write-write / read-write against the last write.
        if let Some((wq, we)) = st.write {
            if !self.ordered(p, wq, we) {
                raced = true;
            }
        }
        if r.write {
            // Write-read against every unobserved read.
            for (&rq, &re) in &st.reads {
                if !self.ordered(p, rq, re) {
                    raced = true;
                }
            }
            st.write = Some((r.pid as u32, epoch));
            st.reads.clear();
        } else {
            st.reads.insert(r.pid as u32, epoch);
        }
        self.words.insert(word, st);
        if raced {
            self.racy.insert(word);
            self.races_seen += 1;
        }
    }

    fn sync(&mut self, pids: &[u32]) {
        // Rendezvous: all listed processes observe each other's history,
        // then start a fresh epoch.
        let nproc = self.vc.len();
        let members: Vec<usize> = pids
            .iter()
            .map(|&p| p as usize)
            .filter(|&p| p < nproc)
            .collect();
        let mut joined = vec![0u32; nproc];
        for &p in &members {
            for (j, &v) in joined.iter_mut().zip(&self.vc[p]) {
                *j = (*j).max(v);
            }
        }
        for &p in &members {
            self.vc[p].copy_from_slice(&joined);
            self.vc[p][p] += 1;
        }
    }

    fn handoff(&mut self, from: u32, to: u32) {
        let (from, to) = (from as usize, to as usize);
        if from >= self.vc.len() || to >= self.vc.len() || from == to {
            return;
        }
        let from_row = self.vc[from].clone();
        for (q, &v) in from_row.iter().enumerate() {
            self.vc[to][q] = self.vc[to][q].max(v);
        }
        self.vc[to][to] += 1;
    }

    fn steal(&mut self, thief: u32, victim: u32) {
        // The thief's deque read observes the victim's publish of the
        // stolen task — a release/acquire pair, shaped exactly like a
        // lock hand-off: the thief joins the victim's clock.
        self.handoff(victim, thief);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(pid: u8, addr: u32) -> MemRef {
        MemRef {
            pid,
            addr,
            write: true,
            gap: 0,
        }
    }

    fn rd(pid: u8, addr: u32) -> MemRef {
        MemRef {
            pid,
            addr,
            write: false,
            gap: 0,
        }
    }

    #[test]
    fn concurrent_writes_race() {
        let mut c = HbChecker::new(2);
        c.access(w(0, 0));
        c.access(w(1, 0));
        assert!(c.racy_words().contains(&0));
    }

    #[test]
    fn barrier_orders_accesses() {
        let mut c = HbChecker::new(2);
        c.access(w(0, 0));
        c.sync(&[0, 1]);
        c.access(w(1, 0));
        assert!(c.is_clean());
    }

    #[test]
    fn lock_handoff_orders_accesses() {
        let mut c = HbChecker::new(2);
        c.access(w(0, 8));
        c.handoff(0, 1);
        c.access(w(1, 8));
        assert!(c.is_clean());
    }

    #[test]
    fn reads_do_not_race_with_reads() {
        let mut c = HbChecker::new(2);
        c.access(rd(0, 4));
        c.access(rd(1, 4));
        assert!(c.is_clean());
    }

    #[test]
    fn unordered_read_then_write_races() {
        let mut c = HbChecker::new(2);
        c.access(rd(0, 4));
        c.access(w(1, 4));
        assert!(c.racy_words().contains(&4));
    }

    #[test]
    fn write_after_sync_then_unsynced_read_races() {
        let mut c = HbChecker::new(2);
        c.sync(&[0, 1]);
        c.access(w(0, 12));
        c.access(rd(1, 12));
        assert!(c.racy_words().contains(&12));
    }

    #[test]
    fn same_process_never_races() {
        let mut c = HbChecker::new(2);
        c.access(w(0, 0));
        c.access(rd(0, 0));
        c.access(w(0, 0));
        assert!(c.is_clean());
    }

    /// Regression: a task writes a word while running on worker 0, gets
    /// stolen by worker 1, and reads the word back there. The write and
    /// read carry different trace pids (the task migrated between
    /// caches), but the steal edge orders them — this must not be
    /// flagged as a race.
    #[test]
    fn stolen_task_write_read_pair_is_not_a_race() {
        let mut c = HbChecker::new(2);
        c.access(w(0, 16));
        c.steal(1, 0);
        c.access(rd(1, 16));
        c.access(w(1, 16));
        assert!(c.is_clean(), "steal edge must order victim before thief");
    }

    /// Without the steal edge the same pair *does* race — pins that the
    /// regression test above is actually exercising the edge.
    #[test]
    fn unstolen_cross_worker_pair_still_races() {
        let mut c = HbChecker::new(2);
        c.access(w(0, 16));
        c.access(rd(1, 16));
        assert!(c.racy_words().contains(&16));
    }

    #[test]
    fn subword_accesses_share_a_word() {
        let mut c = HbChecker::new(2);
        c.access(w(0, 0));
        c.access(w(1, 2));
        assert!(c.racy_words().contains(&0));
    }
}
