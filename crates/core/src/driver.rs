//! Experiment drivers.
//!
//! Two entry points run a set of independent experiment configurations:
//!
//! - [`run_jobs`] — the reference path: every job runs the full pipeline
//!   (parse, check, analyze, plan, lay out, interpret, simulate) by
//!   itself on a worker pool.
//! - [`run_batch`] — the trace-once/simulate-many engine. Front-end
//!   artifacts (checked [`Program`](crate::Program), analysis, bytecode)
//!   are compiled once per distinct (source, params) and shared via
//!   `Arc`; jobs whose memory layouts are address-identical (equal
//!   [`Layout::trace_fingerprint`], confirmed by `trace_eq`) share a
//!   *single* interpretation whose trace fans out through a
//!   [`TeeSink`](fsr_interp::TeeSink) to one cache simulator + timing
//!   model per job. Beyond exact matches, *direct-only* layout groups of
//!   the same (front end, run config) — everything except indirection,
//!   whose first-touch allocation is interpreter state — differ only by
//!   a static address bijection, so they also merge into one pass with a
//!   per-group [`Layout::word_map_to`] translation applied on the way
//!   into each simulator bank. This mirrors the paper's own methodology
//!   — trace each program once, replay the trace through every simulator
//!   configuration — and produces bit-identical statistics to the
//!   reference path (asserted by `tests/batch.rs`).

use crate::{run_pipeline, PipelineConfig, PipelineError, PlanSource, RunResult};
use fsr_interp::{MemRef, TeeSink, TraceSink};
use fsr_lang::ast::WORD_BYTES;
use fsr_layout::Layout;
use fsr_machine::TimingModel;
use fsr_sim::{CacheConfig, MultiSim};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One experiment job.
///
/// `M` is caller-owned metadata (program name, block size, version tag…)
/// carried through the driver untouched — experiment generators match
/// results back to cells structurally instead of round-tripping them
/// through parsed label strings. `src` is shared (`Arc<str>`), so
/// enqueueing the same workload source many times costs one allocation,
/// and the batch engine can key its front-end cache on it by content.
#[derive(Debug, Clone)]
pub struct Job<M = ()> {
    pub meta: M,
    pub src: Arc<str>,
    pub params: Vec<(String, i64)>,
    pub plan: PlanSourceSpec,
    pub cfg: PipelineConfig,
}

impl<M> Job<M> {
    pub fn new(
        meta: M,
        src: impl Into<Arc<str>>,
        params: &[(&str, i64)],
        plan: PlanSourceSpec,
        cfg: PipelineConfig,
    ) -> Job<M> {
        Job {
            meta,
            src: src.into(),
            params: params.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            plan,
            cfg,
        }
    }
}

/// Cloneable plan-source description (function pointers are fine).
#[derive(Debug, Clone)]
pub enum PlanSourceSpec {
    Unoptimized,
    Compiler,
    Programmer(fn(&crate::Program, u32) -> crate::LayoutPlan),
    Explicit(crate::LayoutPlan),
}

impl From<&PlanSourceSpec> for PlanSource {
    fn from(s: &PlanSourceSpec) -> PlanSource {
        match s {
            PlanSourceSpec::Unoptimized => PlanSource::Unoptimized,
            PlanSourceSpec::Compiler => PlanSource::Compiler,
            PlanSourceSpec::Programmer(f) => PlanSource::Programmer(*f),
            PlanSourceSpec::Explicit(p) => PlanSource::Explicit(p.clone()),
        }
    }
}

fn effective_threads(threads: usize, njobs: usize) -> usize {
    let t = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        threads
    };
    t.clamp(1, njobs.max(1))
}

/// Order-preserving parallel map over a slice on a scoped worker pool.
fn parallel_map<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let threads = effective_threads(threads, items.len());
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    return;
                }
                let r = f(&items[i]);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("worker completed"))
        .collect()
}

/// What every driver entry point returns: each job, in submission
/// order, paired with its pipeline result.
pub type JobResults<M> = Vec<(Job<M>, Result<RunResult, PipelineError>)>;

/// Run all jobs independently, using up to `threads` worker threads
/// (0 = available parallelism). Results keep job order.
pub fn run_jobs<M: Sync>(jobs: Vec<Job<M>>, threads: usize) -> JobResults<M> {
    let results = parallel_map(&jobs, threads, |job: &Job<M>| {
        let params: Vec<(&str, i64)> = job.params.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        run_pipeline(&job.src, &params, (&job.plan).into(), &job.cfg)
    });
    jobs.into_iter().zip(results).collect()
}

/// What a batch actually cost, versus `jobs` full pipelines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Jobs submitted.
    pub jobs: usize,
    /// Distinct (source, params) front ends compiled.
    pub front_ends: usize,
    /// Front ends that additionally ran the sharing analysis.
    pub analyses: usize,
    /// Trace groups after fingerprinting: sets of jobs whose layouts are
    /// address-identical and so share one trace verbatim.
    pub trace_groups: usize,
    /// Interpreter passes actually executed. At most `trace_groups`:
    /// direct-only groups of the same (front end, run config) are merged
    /// into one pass via per-group address translation
    /// ([`Layout::word_map_to`]), so `jobs - interpretations` interpreter
    /// runs were saved in total.
    pub interpretations: usize,
}

/// Shared front-end artifacts for one (source, params) key.
struct FrontEnd {
    prog: Arc<crate::Program>,
    code: Arc<fsr_interp::Compiled>,
    nproc: u32,
    /// Present iff some job of this front end uses the compiler plan;
    /// kept as a `Result` so an analysis failure fails only those jobs.
    analysis: Option<Result<Arc<crate::Analysis>, PipelineError>>,
}

/// Per-job prepared state: the plan and the concrete address map.
struct Prep {
    plan: crate::LayoutPlan,
    layout: Layout,
    fingerprint: u64,
}

/// Run all jobs through the batched engine. Results keep job order and
/// are bit-identical to [`run_jobs`] (same `SimStats`, per-object
/// attribution, timing and interpreter statistics).
pub fn run_batch<M: Sync>(jobs: Vec<Job<M>>, threads: usize) -> JobResults<M> {
    run_batch_with_stats(jobs, threads).0
}

/// [`run_batch`], additionally reporting how much work was shared.
pub fn run_batch_with_stats<M: Sync>(
    jobs: Vec<Job<M>>,
    threads: usize,
) -> (JobResults<M>, BatchStats) {
    let n = jobs.len();
    let mut stats = BatchStats {
        jobs: n,
        ..BatchStats::default()
    };
    if n == 0 {
        return (Vec::new(), stats);
    }

    // Phase A — front ends: one compile (+ bytecode, + analysis when any
    // job needs the compiler plan) per distinct (source, params).
    type FeKey = (Arc<str>, Vec<(String, i64)>);
    let mut fe_ids: HashMap<FeKey, usize> = HashMap::new();
    let mut fe_of_job: Vec<usize> = Vec::with_capacity(n);
    let mut fe_needs_analysis: Vec<bool> = Vec::new();
    let mut fe_rep: Vec<usize> = Vec::new();
    for (j, job) in jobs.iter().enumerate() {
        let next_id = fe_ids.len();
        let id = *fe_ids
            .entry((job.src.clone(), job.params.clone()))
            .or_insert(next_id);
        if id == fe_needs_analysis.len() {
            fe_needs_analysis.push(false);
            fe_rep.push(j);
        }
        if matches!(job.plan, PlanSourceSpec::Compiler) {
            fe_needs_analysis[id] = true;
        }
        fe_of_job.push(id);
    }
    stats.front_ends = fe_rep.len();
    stats.analyses = fe_needs_analysis.iter().filter(|&&b| b).count();

    let fe_inputs: Vec<(usize, bool)> = fe_rep
        .iter()
        .copied()
        .zip(fe_needs_analysis.iter().copied())
        .collect();
    let fronts: Vec<Result<FrontEnd, PipelineError>> =
        parallel_map(&fe_inputs, threads, |&(j, needs_analysis)| {
            let job = &jobs[j];
            let params: Vec<(&str, i64)> =
                job.params.iter().map(|(k, v)| (k.as_str(), *v)).collect();
            let prog = fsr_lang::compile_with_params(&job.src, &params)?;
            let nproc = fsr_analysis::nproc_of(&prog).unwrap_or(1) as u32;
            let code = fsr_interp::compile_program(&prog)?;
            let analysis = needs_analysis.then(|| {
                fsr_analysis::analyze(&prog)
                    .map(Arc::new)
                    .map_err(PipelineError::from)
            });
            Ok(FrontEnd {
                prog: Arc::new(prog),
                code: Arc::new(code),
                nproc,
                analysis,
            })
        });

    // Phase B — per-job plan, layout and trace fingerprint.
    let idxs: Vec<usize> = (0..n).collect();
    let preps: Vec<Result<Prep, PipelineError>> = parallel_map(&idxs, threads, |&j| {
        let fe = fronts[fe_of_job[j]]
            .as_ref()
            .map_err(PipelineError::clone)?;
        let job = &jobs[j];
        let plan = match &job.plan {
            PlanSourceSpec::Unoptimized => crate::LayoutPlan::unoptimized(job.cfg.block_bytes),
            PlanSourceSpec::Compiler => {
                let analysis = fe
                    .analysis
                    .as_ref()
                    .expect("analysis computed for compiler-planned front ends")
                    .as_ref()
                    .map_err(PipelineError::clone)?;
                let mut plan_cfg = job.cfg.plan_cfg;
                plan_cfg.block_bytes = job.cfg.block_bytes;
                fsr_transform::plan_for(&fe.prog, analysis, &plan_cfg)
            }
            PlanSourceSpec::Programmer(f) => f(&fe.prog, job.cfg.block_bytes),
            PlanSourceSpec::Explicit(p) => {
                let mut p = p.clone();
                p.block_bytes = job.cfg.block_bytes;
                p
            }
        };
        let layout = Layout::try_build(&fe.prog, &plan, fe.nproc)?;
        let fingerprint = layout.trace_fingerprint();
        Ok(Prep {
            plan,
            layout,
            fingerprint,
        })
    });

    // Phase C — group jobs whose traces are provably identical: same
    // front end, same interpreter config, same address map. The
    // fingerprint buckets candidates; exact `trace_eq` splits any hash
    // collision.
    let mut buckets: HashMap<(usize, fsr_interp::RunConfig, u64), Vec<usize>> = HashMap::new();
    for (j, prep) in preps.iter().enumerate() {
        if let Ok(p) = prep {
            buckets
                .entry((fe_of_job[j], jobs[j].cfg.run, p.fingerprint))
                .or_default()
                .push(j);
        }
    }
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for bucket in buckets.into_values() {
        let mut parts: Vec<Vec<usize>> = Vec::new();
        for j in bucket {
            let lay = &preps[j].as_ref().unwrap().layout;
            match parts
                .iter_mut()
                .find(|p| preps[p[0]].as_ref().unwrap().layout.trace_eq(lay))
            {
                Some(p) => p.push(j),
                None => parts.push(vec![j]),
            }
        }
        groups.append(&mut parts);
    }
    stats.trace_groups = groups.len();

    // Phase C' — translation super-groups. Two direct-only layouts of the
    // same front end are related by a static word-address bijection (the
    // interpreter's only layout dependence is the pure `resolve`; with no
    // indirection there is no first-touch state). All direct-only groups
    // sharing a (front end, run config) therefore merge into ONE
    // interpreter pass: the first group's layout drives the VM, and each
    // other group rewrites the address stream through its
    // [`Layout::word_map_to`] map on the way into its simulator bank.
    // Groups with indirection keep their own pass.
    let mut unit_ids: HashMap<(usize, fsr_interp::RunConfig), usize> = HashMap::new();
    let mut units: Vec<Vec<Vec<usize>>> = Vec::new();
    for group in groups {
        let rep = group[0];
        if preps[rep].as_ref().unwrap().layout.direct_only() {
            let next = units.len();
            let id = *unit_ids
                .entry((fe_of_job[rep], jobs[rep].cfg.run))
                .or_insert(next);
            if id == units.len() {
                units.push(Vec::new());
            }
            units[id].push(group);
        } else {
            units.push(vec![group]);
        }
    }
    stats.interpretations = units.len();

    // Phase D — one interpretation per unit, fanned out to per-job
    // simulators + timing models.
    let group_outputs: Vec<Vec<(usize, Result<RunResult, PipelineError>)>> =
        parallel_map(&units, threads, |unit| {
            run_unit(&jobs, &fronts, &fe_of_job, &preps, unit)
        });

    let mut slots: Vec<Option<Result<RunResult, PipelineError>>> = (0..n).map(|_| None).collect();
    for (j, prep) in preps.iter().enumerate() {
        if let Err(e) = prep {
            slots[j] = Some(Err(e.clone()));
        }
    }
    for out in group_outputs {
        for (j, r) in out {
            slots[j] = Some(r);
        }
    }
    let results = jobs
        .into_iter()
        .zip(slots)
        .map(|(job, r)| (job, r.expect("every job resolved")))
        .collect();
    (results, stats)
}

/// One trace group's receiving end inside a translation unit: rewrites
/// each reference through the group's word map (identity for the group
/// whose layout drives the interpreter), then fans it out to the group's
/// per-job simulator + timing sinks.
struct GroupSink {
    /// Word-indexed translation from the driving layout's addresses to
    /// this group's; `None` = identity (the driving group itself).
    map: Option<Vec<u32>>,
    sinks: Vec<crate::PipelineSink>,
}

impl TraceSink for GroupSink {
    fn access(&mut self, r: MemRef) {
        let r = match &self.map {
            None => r,
            Some(map) => {
                let w = map[(r.addr / WORD_BYTES) as usize];
                debug_assert_ne!(w, u32::MAX, "resolvable addresses are always mapped");
                MemRef {
                    addr: w * WORD_BYTES,
                    ..r
                }
            }
        };
        for s in &mut self.sinks {
            s.access(r);
        }
    }

    fn sync(&mut self, pids: &[u32]) {
        for s in &mut self.sinks {
            s.sync(pids);
        }
    }

    fn handoff(&mut self, from: u32, to: u32) {
        for s in &mut self.sinks {
            s.handoff(from, to);
        }
    }
}

/// Interpret a unit's shared trace once, driving every member job's
/// cache simulator and timing model through a [`TeeSink`] of per-group
/// translating [`GroupSink`]s.
fn run_unit<M>(
    jobs: &[Job<M>],
    fronts: &[Result<FrontEnd, PipelineError>],
    fe_of_job: &[usize],
    preps: &[Result<Prep, PipelineError>],
    unit: &[Vec<usize>],
) -> Vec<(usize, Result<RunResult, PipelineError>)> {
    let rep = unit[0][0];
    let fe = fronts[fe_of_job[rep]]
        .as_ref()
        .expect("units only contain prepared jobs");
    let nproc = fe.nproc;
    let rep_layout = &preps[rep].as_ref().unwrap().layout;

    let group_sinks: Vec<GroupSink> = unit
        .iter()
        .enumerate()
        .map(|(gi, group)| {
            let map = (gi != 0).then(|| {
                rep_layout
                    .word_map_to(&preps[group[0]].as_ref().unwrap().layout)
                    .expect("direct-only layouts of one front end are translation compatible")
            });
            // One address-space bound per group bank: group members differ
            // at most in trailing alignment slack, and a larger bound only
            // sizes vectors — statistics are unaffected.
            let bound_bytes = group
                .iter()
                .map(|&j| preps[j].as_ref().unwrap().layout.total_words())
                .max()
                .unwrap()
                * WORD_BYTES;
            let sim_cfgs: Vec<CacheConfig> = group
                .iter()
                .map(|&j| {
                    let cfg = &jobs[j].cfg;
                    CacheConfig {
                        nproc,
                        block_bytes: cfg.block_bytes,
                        cache_bytes: cfg.cache_bytes,
                        assoc: cfg.assoc,
                        protocol: cfg.protocol,
                    }
                })
                .collect();
            let sinks = MultiSim::bank(&sim_cfgs, bound_bytes)
                .into_iter()
                .zip(group)
                .map(|(sim, &j)| {
                    crate::PipelineSink::new(sim, TimingModel::new(jobs[j].cfg.machine, nproc))
                })
                .collect();
            GroupSink { map, sinks }
        })
        .collect();
    let mut tee = TeeSink::new(group_sinks);

    match fsr_interp::run(&fe.prog, rep_layout, &fe.code, jobs[rep].cfg.run, &mut tee) {
        Err(e) => unit
            .iter()
            .flatten()
            .map(|&j| (j, Err(PipelineError::Runtime(e.clone()))))
            .collect(),
        Ok(fin) => tee
            .into_inner()
            .into_iter()
            .zip(unit)
            .flat_map(|(gs, group)| {
                gs.sinks
                    .into_iter()
                    .zip(group)
                    .map(|(sink, &j)| {
                        let prep = preps[j].as_ref().unwrap();
                        let r =
                            sink.into_result(nproc, prep.plan.clone(), fin.stats.clone(), |addr| {
                                prep.layout
                                    .attribute(addr)
                                    .map(|oid| fe.prog.object(oid).name.clone())
                            });
                        (j, Ok(r))
                    })
                    .collect::<Vec<_>>()
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTERS: &str = "param NPROC = 2; shared int c[NPROC];
               fn main() { forall p in 0 .. NPROC { var i;
                   for i in 0 .. 50 { c[p] = c[p] + 1; } } }";

    fn block_jobs(blocks: &[u32]) -> Vec<Job<u32>> {
        blocks
            .iter()
            .map(|&b| Job {
                meta: b,
                src: Arc::from(COUNTERS),
                params: vec![],
                plan: PlanSourceSpec::Unoptimized,
                cfg: PipelineConfig::with_block(b),
            })
            .collect()
    }

    #[test]
    fn parallel_jobs_produce_ordered_results() {
        let out = run_jobs(block_jobs(&[16, 32, 64, 128]), 2);
        assert_eq!(out.len(), 4);
        for (i, (job, r)) in out.iter().enumerate() {
            assert_eq!(job.meta, [16, 32, 64, 128][i]);
            assert!(r.is_ok());
        }
        // Larger blocks: at least as much false sharing.
        let fs: Vec<u64> = out
            .iter()
            .map(|(_, r)| r.as_ref().unwrap().sim.false_sharing())
            .collect();
        assert!(fs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn errors_are_reported_per_job() {
        let jobs = vec![Job {
            meta: (),
            src: Arc::from("fn main() {"),
            params: vec![],
            plan: PlanSourceSpec::Unoptimized,
            cfg: PipelineConfig::default(),
        }];
        let out = run_jobs(jobs, 1);
        assert!(out[0].1.is_err());
    }

    #[test]
    fn batch_matches_reference_path_per_block() {
        let blocks = [16u32, 32, 64, 128];
        let reference = run_jobs(block_jobs(&blocks), 1);
        let (batched, stats) = run_batch_with_stats(block_jobs(&blocks), 1);
        assert_eq!(stats.jobs, 4);
        assert_eq!(stats.front_ends, 1, "one (source, params) key");
        // Unoptimized layouts ignore the block size: one shared trace.
        assert_eq!(stats.trace_groups, 1);
        assert_eq!(stats.interpretations, 1);
        for ((_, want), (job, got)) in reference.iter().zip(&batched) {
            let want = want.as_ref().unwrap();
            let got = got.as_ref().unwrap();
            assert_eq!(want.sim, got.sim, "block {}", job.meta);
            assert_eq!(want.per_obj, got.per_obj, "block {}", job.meta);
            assert_eq!(want.exec_cycles, got.exec_cycles, "block {}", job.meta);
            assert_eq!(want.timing, got.timing, "block {}", job.meta);
            assert_eq!(want.interp, got.interp, "block {}", job.meta);
        }
    }

    #[test]
    fn batch_splits_groups_when_layouts_differ() {
        // Compiler plans pad/transpose by block size: distinct traces.
        let jobs: Vec<Job<u32>> = [32u32, 128]
            .iter()
            .flat_map(|&b| {
                [PlanSourceSpec::Unoptimized, PlanSourceSpec::Compiler]
                    .into_iter()
                    .map(move |plan| Job {
                        meta: b,
                        src: Arc::from(COUNTERS),
                        params: vec![],
                        plan,
                        cfg: PipelineConfig::with_block(b),
                    })
            })
            .collect();
        let reference = run_jobs(jobs.clone(), 1);
        let (out, stats) = run_batch_with_stats(jobs, 0);
        assert_eq!(stats.front_ends, 1);
        assert_eq!(stats.analyses, 1);
        // 1 shared unoptimized group + one compiler group per block.
        assert_eq!(stats.trace_groups, 3);
        // All three groups are direct-only layouts of one front end, so
        // address translation collapses them into a single interpreter
        // pass...
        assert_eq!(stats.interpretations, 1);
        // ...whose translated statistics still match the reference path
        // exactly.
        for ((_, want), (job, got)) in reference.iter().zip(&out) {
            let want = want.as_ref().unwrap();
            let got = got.as_ref().unwrap();
            assert_eq!(want.sim, got.sim, "block {}", job.meta);
            assert_eq!(want.per_obj, got.per_obj, "block {}", job.meta);
            assert_eq!(want.exec_cycles, got.exec_cycles, "block {}", job.meta);
            assert_eq!(want.timing, got.timing, "block {}", job.meta);
        }
    }

    #[test]
    fn batch_reports_front_end_errors_per_job() {
        let jobs: Vec<Job<()>> = (0..3)
            .map(|_| Job {
                meta: (),
                src: Arc::from("fn main() {"),
                params: vec![],
                plan: PlanSourceSpec::Unoptimized,
                cfg: PipelineConfig::default(),
            })
            .collect();
        let (out, stats) = run_batch_with_stats(jobs, 1);
        assert_eq!(stats.front_ends, 1, "broken source compiled once");
        assert_eq!(stats.trace_groups, 0);
        assert_eq!(stats.interpretations, 0);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|(_, r)| r.is_err()));
    }

    #[test]
    fn batch_reports_runtime_errors_for_every_group_member() {
        let src = "shared int a[2]; fn main() { forall p in 0 .. 4 { a[p] = 1; } }";
        let jobs: Vec<Job<u32>> = [16u32, 64]
            .iter()
            .map(|&b| Job {
                meta: b,
                src: Arc::from(src),
                params: vec![],
                plan: PlanSourceSpec::Unoptimized,
                cfg: PipelineConfig::with_block(b),
            })
            .collect();
        let out = run_batch(jobs, 1);
        for (_, r) in &out {
            assert!(matches!(r, Err(PipelineError::Runtime(_))));
        }
    }
}
