//! Experiment drivers.
//!
//! Two entry points run a set of independent experiment configurations:
//!
//! - [`run_jobs`] — the reference path: every job runs the full pipeline
//!   (parse, check, analyze, plan, lay out, interpret, simulate) by
//!   itself on a worker pool.
//! - [`run_batch`] — the trace-once/simulate-many engine. Front-end
//!   artifacts (checked [`Program`](crate::Program), analysis, bytecode)
//!   are compiled once per distinct (source, params) and shared via
//!   `Arc`; jobs whose memory layouts are address-identical (equal
//!   [`Layout::trace_fingerprint`], confirmed by `trace_eq`) share a
//!   *single* interpretation. Beyond exact matches, *direct-only* layout
//!   groups of the same (front end, run config) — everything except
//!   indirection, whose first-touch allocation is interpreter state —
//!   differ only by a static address bijection, so they also merge into
//!   one pass with a per-group [`Layout::word_map_to`] translation
//!   applied on the way into each simulator. This mirrors the paper's
//!   own methodology — trace each program once, replay the trace through
//!   every simulator configuration — and produces bit-identical
//!   statistics to the reference path (asserted by `tests/batch.rs`).
//!
//! # Two-level scheduling
//!
//! The batch engine schedules on two levels. The outer worker pool runs
//! translation *units* (shared interpretations) in parallel, exactly as
//! before. Worker threads left over — `threads` divided by the number
//! of concurrently runnable units — are spent *inside* each unit by the
//! phase/bank-sharded engine ([`ShardMode`]):
//!
//! - the interpreter runs on its own producer thread, cutting the event
//!   stream into *phase segments* at barrier-synchronization boundaries
//!   (the same non-concurrency structure the barrier-phase analysis
//!   computes; [`fsr_analysis::phase_profile`] decides whether the
//!   program has barriers worth splitting at) with a size cap so
//!   barrier-free programs still pipeline;
//! - per segment, every member job's cache simulator is sharded across
//!   *address banks* ([`BankedSim`]) that simulate concurrently, each
//!   bank consuming the addresses it owns in program order;
//! - a per-job *timing stitch* then replays the segment's events in
//!   original order against the job's [`TimingModel`], consuming the
//!   banks' precomputed outcomes, so clocks and channel occupancy carry
//!   across segment boundaries exactly.
//!
//! Coherence state lives in the banks and timing state in the stitch for
//! the whole run — state is partitioned, never copied — so the sharded
//! engine is bit-identical to the serial [`TeeSink`] path (asserted by
//! `tests/shard.rs` across protocols, interconnects and workloads).

use crate::world::{CachedTrace, Caches, FeKey, FrontEnd, RunCounters, World};
use crate::{run_pipeline, PipelineConfig, PipelineError, PlanSource, RunResult};
use fsr_interp::{MemRef, RunStats, TeeSink, TraceEvent, TraceSink};
use fsr_lang::ast::WORD_BYTES;
use fsr_layout::Layout;
use fsr_machine::TimingModel;
use fsr_sim::{BankedSim, CacheConfig, MultiSim, Outcome, SimEngine, CHUNK_LANES};
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Mutex};

/// One experiment job.
///
/// `M` is caller-owned metadata (program name, block size, version tag…)
/// carried through the driver untouched — experiment generators match
/// results back to cells structurally instead of round-tripping them
/// through parsed label strings. `src` is shared (`Arc<str>`), so
/// enqueueing the same workload source many times costs one allocation,
/// and the batch engine can key its front-end cache on it by content.
#[derive(Debug, Clone)]
pub struct Job<M = ()> {
    pub meta: M,
    pub src: Arc<str>,
    pub params: Vec<(String, i64)>,
    pub plan: PlanSourceSpec,
    pub cfg: PipelineConfig,
}

impl<M> Job<M> {
    pub fn new(
        meta: M,
        src: impl Into<Arc<str>>,
        params: &[(&str, i64)],
        plan: PlanSourceSpec,
        cfg: PipelineConfig,
    ) -> Job<M> {
        Job {
            meta,
            src: src.into(),
            params: params.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            plan,
            cfg,
        }
    }
}

/// Cloneable plan-source description (function pointers are fine).
#[derive(Debug, Clone)]
pub enum PlanSourceSpec {
    Unoptimized,
    Compiler,
    Programmer(fn(&crate::Program, u32) -> crate::LayoutPlan),
    Explicit(crate::LayoutPlan),
}

impl From<&PlanSourceSpec> for PlanSource {
    fn from(s: &PlanSourceSpec) -> PlanSource {
        match s {
            PlanSourceSpec::Unoptimized => PlanSource::Unoptimized,
            PlanSourceSpec::Compiler => PlanSource::Compiler,
            PlanSourceSpec::Programmer(f) => PlanSource::Programmer(*f),
            PlanSourceSpec::Explicit(p) => PlanSource::Explicit(p.clone()),
        }
    }
}

/// Failure of the driver machinery itself, as opposed to a pipeline
/// failure of the job's program. `Clone` so one shared failure can be
/// reported against every affected job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverError {
    /// A worker thread panicked. The panic is caught at the pool
    /// boundary and attributed to the job being processed, instead of
    /// poisoning the result slots and killing the whole batch.
    WorkerPanic {
        /// Driver stage the worker was running ("front end",
        /// "plan/layout", "simulate", "interpret", "pipeline").
        stage: &'static str,
        /// Index of the failing job in submission order.
        job_index: usize,
        /// The failing job's `meta`, formatted with `Debug`.
        job_meta: String,
        /// The panic payload, when it was a string.
        payload: String,
    },
    /// Batch grouping put two layouts in one translation unit that are
    /// not address-translation compatible — a driver bug, reported with
    /// both layouts identified instead of panicking deep in a worker.
    IncompatibleLayouts { from: String, to: String },
    /// Engine-aware bank negotiation found no bank count > 1 satisfying
    /// the job's cache geometry and engine constraints while sharding
    /// was *forced* ([`ShardMode::Force`]). Forcing promises within-unit
    /// parallelism, so the driver reports the mismatch instead of
    /// silently degrading the job to one bank (`ShardMode::Auto` does
    /// degrade quietly — banking is then a best-effort optimization).
    BankPlan { job_meta: String, detail: String },
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::WorkerPanic {
                stage,
                job_index,
                job_meta,
                payload,
            } => write!(
                f,
                "worker panicked in {stage} stage on job {job_index} (meta: {job_meta}): {payload}"
            ),
            DriverError::IncompatibleLayouts { from, to } => write!(
                f,
                "no address translation from layout [{from}] to layout [{to}] \
                 (batch grouping should never unite these)"
            ),
            DriverError::BankPlan { job_meta, detail } => write!(
                f,
                "forced sharding has no valid bank plan for job (meta: {job_meta}): {detail}"
            ),
        }
    }
}

impl std::error::Error for DriverError {}

/// `threads` with 0 resolved to the machine's available parallelism.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        threads
    }
}

/// Worker threads actually used for `njobs` jobs: `threads` (0 = the
/// machine's available parallelism) clamped to the job count *after*
/// resolving, so a small batch never oversubscribes its pool.
pub fn effective_threads(threads: usize, njobs: usize) -> usize {
    resolve_threads(threads).clamp(1, njobs.max(1))
}

/// Best-effort string form of a panic payload.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A [`DriverError::WorkerPanic`] for `jobs[job_index]`, wrapped as a
/// pipeline error.
fn worker_panic<M: fmt::Debug>(
    stage: &'static str,
    job_index: usize,
    jobs: &[Job<M>],
    payload: String,
) -> PipelineError {
    PipelineError::Driver(DriverError::WorkerPanic {
        stage,
        job_index,
        job_meta: format!("{:?}", jobs[job_index].meta),
        payload,
    })
}

/// Order-preserving parallel map over a slice on a scoped worker pool.
/// Each item's computation is individually unwind-guarded: a panicking
/// item yields `Err(payload)` in its own slot while every other item
/// completes normally (the old path left the slot mutex poisoned and
/// died in an opaque `expect("worker completed")`).
fn parallel_map<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<Result<R, String>> {
    let run_one =
        |item: &T| catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|p| panic_message(&*p));
    let threads = effective_threads(threads, items.len());
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(run_one).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, String>>>> =
        (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    return;
                }
                let r = run_one(&items[i]);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("every index claimed once"))
        .collect()
}

/// What every driver entry point returns: each job, in submission
/// order, paired with its pipeline result.
pub type JobResults<M> = Vec<(Job<M>, Result<RunResult, PipelineError>)>;

/// Per-job completion callback for streaming batch runs: fires exactly
/// once per job, from whichever worker resolved it.
pub type BatchNotify<'a> = &'a (dyn Fn(usize, &Result<RunResult, PipelineError>) + Sync);

/// Run all jobs independently, using up to `threads` worker threads
/// (0 = available parallelism). Results keep job order.
pub fn run_jobs<M: Sync + fmt::Debug>(jobs: Vec<Job<M>>, threads: usize) -> JobResults<M> {
    let results = parallel_map(&jobs, threads, |job: &Job<M>| {
        let params: Vec<(&str, i64)> = job.params.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        run_pipeline(&job.src, &params, (&job.plan).into(), &job.cfg)
    });
    let results: Vec<Result<RunResult, PipelineError>> = results
        .into_iter()
        .enumerate()
        .map(|(j, r)| match r {
            Ok(r) => r,
            Err(payload) => Err(worker_panic("pipeline", j, &jobs, payload)),
        })
        .collect();
    jobs.into_iter().zip(results).collect()
}

/// What a batch actually cost, versus `jobs` full pipelines. Every
/// counter is *per run* — a long-lived daemon reports each request's own
/// cost (the old process-global segment counter accumulated forever).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Jobs submitted.
    pub jobs: usize,
    /// Distinct (source, params) front ends compiled fresh this run.
    pub front_ends: usize,
    /// Front ends served from a warm [`World`] cache instead of
    /// compiling (always 0 on the transient `run_batch*` entry points).
    pub fe_hits: usize,
    /// Sharing analyses computed fresh this run.
    pub analyses: usize,
    /// Trace groups after fingerprinting: sets of jobs whose layouts are
    /// address-identical and so share one trace verbatim.
    pub trace_groups: usize,
    /// Interpreter passes actually executed. At most `trace_groups`:
    /// direct-only groups of the same (front end, run config) are merged
    /// into one pass via per-group address translation
    /// ([`Layout::word_map_to`]), so `jobs - interpretations` interpreter
    /// runs were saved in total. On a warm [`World`], units whose
    /// reference trace was recorded earlier replay it instead of
    /// re-interpreting (`trace_hits`) and don't count here.
    pub interpretations: usize,
    /// Units replayed from a recorded trace instead of interpreting.
    pub trace_hits: usize,
    /// Jobs answered whole from a warm [`World`]'s result cache, without
    /// entering the engine at all.
    pub result_hits: usize,
    /// Phase segments the sharded engine simulated this run.
    pub segments: u64,
}

/// How [`run_batch_sharded`] spends worker threads *within* each
/// translation unit (see the module docs on two-level scheduling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardMode {
    /// Divide the thread budget: threads not consumed by unit-level
    /// parallelism drive phase segments and address banks inside each
    /// unit. With one effective thread this is exactly the serial path.
    Auto,
    /// Always use the phase/bank-sharded engine, with this many worker
    /// threads per unit. Equivalence tests force ≥ 2 so the stitch is
    /// exercised even on single-core machines.
    Force(usize),
    /// Never shard within a unit (the serial [`TeeSink`] path).
    Off,
}

/// Per-job prepared state: the plan and the concrete address map.
/// (Front-end artifacts live in [`crate::world::FrontEnd`], shared
/// across batches by a [`World`]'s content-addressed cache.)
struct Prep {
    plan: crate::LayoutPlan,
    layout: Layout,
    fingerprint: u64,
}

/// The prepared state of job `j` (only called for jobs the engine has
/// proven prepared — skipped and failed jobs never reach here).
fn prep_of(preps: &[Option<Result<Prep, PipelineError>>], j: usize) -> &Prep {
    preps[j]
        .as_ref()
        .expect("job entered the engine")
        .as_ref()
        .expect("job prepared successfully")
}

/// Run all jobs through the batched engine. Results keep job order and
/// are bit-identical to [`run_jobs`] (same `SimStats`, per-object
/// attribution, timing and interpreter statistics).
pub fn run_batch<M: Sync + fmt::Debug>(jobs: Vec<Job<M>>, threads: usize) -> JobResults<M> {
    run_batch_sharded_with_stats(jobs, threads, ShardMode::Auto).0
}

/// [`run_batch`], additionally reporting how much work was shared.
pub fn run_batch_with_stats<M: Sync + fmt::Debug>(
    jobs: Vec<Job<M>>,
    threads: usize,
) -> (JobResults<M>, BatchStats) {
    run_batch_sharded_with_stats(jobs, threads, ShardMode::Auto)
}

/// [`run_batch`] with explicit control over within-unit sharding.
pub fn run_batch_sharded<M: Sync + fmt::Debug>(
    jobs: Vec<Job<M>>,
    threads: usize,
    shard: ShardMode,
) -> JobResults<M> {
    run_batch_sharded_with_stats(jobs, threads, shard).0
}

/// [`run_batch_sharded`], additionally reporting how much work was
/// shared. Runs on a throwaway transient [`World`]: front-end artifacts
/// are shared within the batch exactly as before, and nothing outlives
/// the call. Persistent sharing across calls is the [`World`] /
/// [`crate::world::Snapshot`] API.
pub fn run_batch_sharded_with_stats<M: Sync + fmt::Debug>(
    jobs: Vec<Job<M>>,
    threads: usize,
    shard: ShardMode,
) -> (JobResults<M>, BatchStats) {
    let world = World::transient();
    let snapshot = world.snapshot();
    run_batch_in(snapshot.caches(), jobs, threads, shard, None)
}

/// The batch engine, running against a [`World`]'s caches. All public
/// batch entry points funnel here — transient worlds reproduce the
/// classic one-shot behavior bit-for-bit, persistent worlds additionally
/// consult and feed the result and trace caches.
///
/// `notify`, when given, fires once per job with its final result, from
/// whichever worker resolved it: result-cache hits immediately (in
/// submission order), prepare failures as soon as phase B settles, and
/// engine-run jobs the moment their translation unit finishes — this is
/// how `fsr-serve` streams per-cell results before the batch completes.
pub(crate) fn run_batch_in<M: Sync + fmt::Debug>(
    caches: &Caches,
    jobs: Vec<Job<M>>,
    threads: usize,
    shard: ShardMode,
    notify: Option<BatchNotify<'_>>,
) -> (JobResults<M>, BatchStats) {
    let n = jobs.len();
    let mut stats = BatchStats {
        jobs: n,
        ..BatchStats::default()
    };
    if n == 0 {
        return (Vec::new(), stats);
    }
    let rc = RunCounters::default();
    let notify_one = |j: usize, r: &Result<RunResult, PipelineError>| {
        if let Some(f) = notify {
            f(j, r);
        }
    };
    let mut slots: Vec<Option<Result<RunResult, PipelineError>>> = (0..n).map(|_| None).collect();

    // Phase R — whole-result probe (persistent worlds only): a job
    // identical to one served before (same source content, params, plan
    // spec and full config) is answered from the result cache without
    // entering the engine at all.
    let mut rkeys: Vec<Option<ResultKey>> = (0..n).map(|_| None).collect();
    if caches.cache_results {
        for (j, job) in jobs.iter().enumerate() {
            let key: ResultKey = (
                (job.src.clone(), job.params.clone()),
                format!("{:?}", job.plan),
                format!("{:?}", job.cfg),
            );
            match caches.result_get(&key) {
                Some(r) => {
                    stats.result_hits += 1;
                    let r = Ok((*r).clone());
                    notify_one(j, &r);
                    slots[j] = Some(r);
                }
                None => rkeys[j] = Some(key),
            }
        }
    }

    // Phase A — front ends through the world cache: one compile (+
    // bytecode, + analysis when any job needs the compiler plan) per
    // distinct (source, params) content — per batch on a transient
    // world, *ever* on a persistent one.
    let mut fe_ids: HashMap<FeKey, usize> = HashMap::new();
    let mut fe_of_job: Vec<usize> = vec![usize::MAX; n];
    let mut fe_needs_analysis: Vec<bool> = Vec::new();
    let mut fe_rep: Vec<usize> = Vec::new();
    for (j, job) in jobs.iter().enumerate() {
        if slots[j].is_some() {
            continue;
        }
        let next_id = fe_ids.len();
        let id = *fe_ids
            .entry((job.src.clone(), job.params.clone()))
            .or_insert(next_id);
        if id == fe_needs_analysis.len() {
            fe_needs_analysis.push(false);
            fe_rep.push(j);
        }
        if matches!(job.plan, PlanSourceSpec::Compiler) {
            fe_needs_analysis[id] = true;
        }
        fe_of_job[j] = id;
    }

    let fe_inputs: Vec<(usize, bool)> = fe_rep
        .iter()
        .copied()
        .zip(fe_needs_analysis.iter().copied())
        .collect();
    let fronts: Vec<Result<Arc<FrontEnd>, PipelineError>> =
        parallel_map(&fe_inputs, threads, |&(j, needs_analysis)| {
            let job = &jobs[j];
            caches.front_end(&job.src, &job.params, needs_analysis, &rc)
        })
        .into_iter()
        .zip(&fe_inputs)
        .map(|(r, &(j, _))| match r {
            Ok(r) => r,
            Err(payload) => Err(worker_panic("front end", j, &jobs, payload)),
        })
        .collect();

    // Phase B — per-job plan, layout and trace fingerprint (jobs already
    // answered from the result cache are skipped).
    let active: Vec<usize> = (0..n).filter(|&j| slots[j].is_none()).collect();
    let prep_results = parallel_map(&active, threads, |&j| {
        let fe: &FrontEnd = fronts[fe_of_job[j]]
            .as_ref()
            .map_err(PipelineError::clone)?;
        let job = &jobs[j];
        let plan = match &job.plan {
            PlanSourceSpec::Unoptimized => crate::LayoutPlan::unoptimized(job.cfg.block_bytes),
            PlanSourceSpec::Compiler => {
                let analysis = fe.analysis()?;
                let mut plan_cfg = job.cfg.plan_cfg;
                plan_cfg.block_bytes = job.cfg.block_bytes;
                fsr_transform::plan_for(&fe.prog, &analysis, &plan_cfg)
            }
            PlanSourceSpec::Programmer(f) => f(&fe.prog, job.cfg.block_bytes),
            PlanSourceSpec::Explicit(p) => {
                let mut p = p.clone();
                p.block_bytes = job.cfg.block_bytes;
                p
            }
        };
        let layout = Layout::try_build(&fe.prog, &plan, fe.nproc)?;
        let fingerprint = layout.trace_fingerprint();
        Ok(Prep {
            plan,
            layout,
            fingerprint,
        })
    });
    let mut preps: Vec<Option<Result<Prep, PipelineError>>> = (0..n).map(|_| None).collect();
    for (r, &j) in prep_results.into_iter().zip(&active) {
        preps[j] = Some(match r {
            Ok(r) => r,
            Err(payload) => Err(worker_panic("plan/layout", j, &jobs, payload)),
        });
    }
    for j in 0..n {
        if let Some(Err(e)) = &preps[j] {
            let r = Err(e.clone());
            notify_one(j, &r);
            slots[j] = Some(r);
        }
    }

    // Phase C — group jobs whose traces are provably identical: same
    // front end, same interpreter config, same address map. The
    // fingerprint buckets candidates; exact `trace_eq` splits any hash
    // collision.
    let mut buckets: HashMap<(usize, fsr_interp::RunConfig, u64), Vec<usize>> = HashMap::new();
    for &j in &active {
        if let Some(Ok(p)) = &preps[j] {
            buckets
                .entry((fe_of_job[j], jobs[j].cfg.run, p.fingerprint))
                .or_default()
                .push(j);
        }
    }
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for bucket in buckets.into_values() {
        let mut parts: Vec<Vec<usize>> = Vec::new();
        for j in bucket {
            let lay = &prep_of(&preps, j).layout;
            match parts
                .iter_mut()
                .find(|p| prep_of(&preps, p[0]).layout.trace_eq(lay))
            {
                Some(p) => p.push(j),
                None => parts.push(vec![j]),
            }
        }
        groups.append(&mut parts);
    }
    stats.trace_groups = groups.len();

    // Phase C' — translation super-groups. Two direct-only layouts of the
    // same front end are related by a static word-address bijection (the
    // interpreter's only layout dependence is the pure `resolve`; with no
    // indirection there is no first-touch state). All direct-only groups
    // sharing a (front end, run config) therefore merge into ONE
    // interpreter pass: the first group's layout drives the VM, and each
    // other group rewrites the address stream through its
    // [`Layout::word_map_to`] map on the way into its simulators. Groups
    // with indirection keep their own pass.
    let mut unit_ids: HashMap<(usize, fsr_interp::RunConfig), usize> = HashMap::new();
    let mut units: Vec<Vec<Vec<usize>>> = Vec::new();
    for group in groups {
        let rep = group[0];
        if prep_of(&preps, rep).layout.direct_only() {
            let next = units.len();
            let id = *unit_ids
                .entry((fe_of_job[rep], jobs[rep].cfg.run))
                .or_insert(next);
            if id == units.len() {
                units.push(Vec::new());
            }
            units[id].push(group);
        } else {
            units.push(vec![group]);
        }
    }

    // Phase D — one interpretation (or trace replay, on a warm world)
    // per unit, fanned out to per-job simulators + timing models.
    // Two-level split of the thread budget: the outer pool takes as many
    // threads as there are units to run concurrently; the remainder
    // shards each unit internally.
    let outer = effective_threads(threads, units.len());
    let shard_threads = match shard {
        ShardMode::Off => 1,
        ShardMode::Force(k) => k.max(1),
        ShardMode::Auto => (resolve_threads(threads) / outer).max(1),
    };
    let use_sharded = matches!(shard, ShardMode::Force(_)) || shard_threads > 1;
    let strict_banks = matches!(shard, ShardMode::Force(_));
    let group_outputs = parallel_map(&units, threads, |unit| {
        let out = run_unit(
            &jobs,
            &fronts,
            &fe_of_job,
            &preps,
            unit,
            shard_threads,
            use_sharded,
            strict_banks,
            caches,
            &rc,
        );
        for (j, r) in &out {
            notify_one(*j, r);
        }
        out
    });

    for (u, out) in group_outputs.into_iter().enumerate() {
        match out {
            Ok(out) => {
                for (j, r) in out {
                    slots[j] = Some(r);
                }
            }
            // A panic that escaped the per-segment guards (e.g. in unit
            // assembly) is charged to every member job of the unit.
            Err(payload) => {
                for &j in units[u].iter().flatten() {
                    let r = Err(worker_panic("simulate", j, &jobs, payload.clone()));
                    notify_one(j, &r);
                    slots[j] = Some(r);
                }
            }
        }
    }

    stats.front_ends = rc.fe_fresh.load(Ordering::Relaxed);
    stats.fe_hits = rc.fe_hits.load(Ordering::Relaxed);
    stats.analyses = rc.analyses.load(Ordering::Relaxed);
    stats.interpretations = rc.interpretations.load(Ordering::Relaxed);
    stats.trace_hits = rc.trace_hits.load(Ordering::Relaxed);
    stats.segments = rc.segments.load(Ordering::Relaxed);

    // Feed fresh successes back into the result cache (persistent
    // worlds only), so the next identical job takes phase R.
    if caches.cache_results {
        for (j, key) in rkeys.iter_mut().enumerate() {
            if let (Some(key), Some(Ok(r))) = (key.take(), &slots[j]) {
                caches.result_put(key, Arc::new(r.clone()));
            }
        }
    }

    let results = jobs
        .into_iter()
        .zip(slots)
        .map(|(job, r)| (job, r.expect("every job resolved")))
        .collect();
    (results, stats)
}

/// Result-cache key: front-end key plus the `Debug` renderings of the
/// plan spec and the full pipeline config (exhaustive over every knob,
/// so equal keys mean identical jobs).
type ResultKey = (FeKey, String, String);

/// Identify a layout in diagnostics.
fn layout_desc(lay: &Layout) -> String {
    format!(
        "fingerprint {:#018x}, {} words",
        lay.trace_fingerprint(),
        lay.total_words()
    )
}

/// Translate a driving-layout address through a group's word map
/// (`None` = the driving group itself, identity).
fn translate(map: Option<&Vec<u32>>, addr: u32) -> u32 {
    match map {
        None => addr,
        Some(m) => {
            let w = m[(addr / WORD_BYTES) as usize];
            debug_assert_ne!(w, u32::MAX, "resolvable addresses are always mapped");
            w * WORD_BYTES
        }
    }
}

/// Where a unit's event stream comes from: a live interpreter pass, or
/// a recorded trace a warm [`World`] replays (the trace depends only on
/// the program, params, run config and driving layout — never on the
/// protocol, interconnect or engine — so one recording serves every
/// backend combination, exactly like [`crate::record_trace`]).
#[derive(Clone, Copy)]
enum UnitSource<'a> {
    Interp,
    Replay {
        events: &'a [TraceEvent],
        interp: &'a RunStats,
    },
}

/// Dispatch one recorded event into a sink.
fn feed(sink: &mut dyn TraceSink, e: &TraceEvent) {
    match e {
        TraceEvent::Access(r) => sink.access(*r),
        TraceEvent::Sync(pids) => sink.sync(pids),
        TraceEvent::Handoff { from, to } => sink.handoff(*from, *to),
        TraceEvent::Steal { thief, victim } => sink.steal(*thief, *victim),
    }
}

/// Tee that captures the interpreter's event stream for the trace cache
/// while forwarding it unchanged to the real consumer.
struct RecordingSink<'a> {
    events: &'a mut Vec<TraceEvent>,
    inner: &'a mut dyn TraceSink,
}

impl TraceSink for RecordingSink<'_> {
    fn access(&mut self, r: MemRef) {
        self.events.push(TraceEvent::Access(r));
        self.inner.access(r);
    }

    fn sync(&mut self, pids: &[u32]) {
        self.events.push(TraceEvent::Sync(pids.to_vec()));
        self.inner.sync(pids);
    }

    fn handoff(&mut self, from: u32, to: u32) {
        self.events.push(TraceEvent::Handoff { from, to });
        self.inner.handoff(from, to);
    }

    fn steal(&mut self, thief: u32, victim: u32) {
        self.events.push(TraceEvent::Steal { thief, victim });
        self.inner.steal(thief, victim);
    }
}

/// Interpret a unit's shared trace once (or replay a cached recording),
/// driving every member job's cache simulator and timing model —
/// serially through a [`TeeSink`] of per-group translating
/// [`GroupSink`]s, or via the phase/bank-sharded engine when the thread
/// budget allows ([`run_unit_sharded`]).
#[allow(clippy::too_many_arguments)]
fn run_unit<M: Sync + fmt::Debug>(
    jobs: &[Job<M>],
    fronts: &[Result<Arc<FrontEnd>, PipelineError>],
    fe_of_job: &[usize],
    preps: &[Option<Result<Prep, PipelineError>>],
    unit: &[Vec<usize>],
    shard_threads: usize,
    use_sharded: bool,
    strict_banks: bool,
    caches: &Caches,
    rc: &RunCounters,
) -> Vec<(usize, Result<RunResult, PipelineError>)> {
    let rep = unit[0][0];
    let fe: &FrontEnd = fronts[fe_of_job[rep]]
        .as_ref()
        .expect("units only contain prepared jobs");
    let rep_layout = &prep_of(preps, rep).layout;

    // Per-group translation maps up front: a group whose layout turns
    // out not to be reachable from the driving layout gets a structured
    // error naming both layouts, and its siblings proceed (the old path
    // panicked the whole unit's worker from deep inside sink setup).
    let mut failed: Vec<(usize, Result<RunResult, PipelineError>)> = Vec::new();
    let mut live: Vec<(&Vec<usize>, Option<Vec<u32>>)> = Vec::new();
    for (gi, group) in unit.iter().enumerate() {
        if gi == 0 {
            live.push((group, None));
            continue;
        }
        let glay = &prep_of(preps, group[0]).layout;
        match rep_layout.word_map_to(glay) {
            Some(map) => live.push((group, Some(map))),
            None => {
                let e = PipelineError::Driver(DriverError::IncompatibleLayouts {
                    from: layout_desc(rep_layout),
                    to: layout_desc(glay),
                });
                failed.extend(group.iter().map(|&j| (j, Err(e.clone()))));
            }
        }
    }

    // Trace cache (persistent worlds): this unit's reference trace is
    // keyed by (source content, params, run config, driving-layout
    // fingerprint); a hit — confirmed exact with `trace_eq` — replays
    // the recording instead of re-running the interpreter.
    let tkey = (
        (jobs[rep].src.clone(), jobs[rep].params.clone()),
        jobs[rep].cfg.run,
        prep_of(preps, rep).fingerprint,
    );
    let cached = if caches.cache_traces {
        caches.trace_get(&tkey, rep_layout)
    } else {
        None
    };
    let (source, record) = match &cached {
        Some(ct) => {
            rc.trace_hits.fetch_add(1, Ordering::Relaxed);
            (
                UnitSource::Replay {
                    events: &ct.events,
                    interp: &ct.interp,
                },
                false,
            )
        }
        None => {
            rc.interpretations.fetch_add(1, Ordering::Relaxed);
            (UnitSource::Interp, caches.cache_traces)
        }
    };

    let (mut out, recorded) = if use_sharded {
        run_unit_sharded(
            jobs,
            fe,
            rep,
            preps,
            &live,
            shard_threads,
            strict_banks,
            source,
            record,
            rc,
        )
    } else {
        run_unit_serial(jobs, fe, rep, preps, live, source, record)
    };
    if let Some((events, interp)) = recorded {
        caches.trace_put(
            tkey,
            CachedTrace {
                events: Arc::new(events),
                interp,
                layout: rep_layout.clone(),
            },
        );
    }
    out.append(&mut failed);
    out
}

/// One trace group's receiving end inside a translation unit: rewrites
/// each reference through the group's word map (identity for the group
/// whose layout drives the interpreter), then fans it out to the group's
/// per-job simulator + timing sinks.
struct GroupSink {
    /// Word-indexed translation from the driving layout's addresses to
    /// this group's; `None` = identity (the driving group itself).
    map: Option<Vec<u32>>,
    sinks: Vec<crate::PipelineSink>,
}

impl TraceSink for GroupSink {
    fn access(&mut self, r: MemRef) {
        let r = MemRef {
            addr: translate(self.map.as_ref(), r.addr),
            ..r
        };
        for s in &mut self.sinks {
            s.access(r);
        }
    }

    fn sync(&mut self, pids: &[u32]) {
        for s in &mut self.sinks {
            s.sync(pids);
        }
    }

    fn handoff(&mut self, from: u32, to: u32) {
        for s in &mut self.sinks {
            s.handoff(from, to);
        }
    }

    fn steal(&mut self, thief: u32, victim: u32) {
        for s in &mut self.sinks {
            s.steal(thief, victim);
        }
    }
}

/// The simulation cache config for job `j` of a unit.
fn sim_cfg_of<M>(jobs: &[Job<M>], j: usize, nproc: u32) -> CacheConfig {
    let cfg = &jobs[j].cfg;
    CacheConfig {
        nproc,
        block_bytes: cfg.block_bytes,
        cache_bytes: cfg.cache_bytes,
        assoc: cfg.assoc,
        protocol: cfg.protocol,
    }
}

/// One address-space bound per group: group members differ at most in
/// trailing alignment slack, and a larger bound only sizes vectors —
/// statistics are unaffected.
fn group_bound_bytes(preps: &[Option<Result<Prep, PipelineError>>], group: &[usize]) -> u32 {
    group
        .iter()
        .map(|&j| prep_of(preps, j).layout.total_words())
        .max()
        .unwrap()
        * WORD_BYTES
}

/// Serial unit engine: the interpreter (or the trace replay) drives a
/// [`TeeSink`] of group sinks in one thread. When `record` is set, the
/// interpreter's event stream is captured and returned alongside the
/// results for the world's trace cache.
type UnitOutput = (
    Vec<(usize, Result<RunResult, PipelineError>)>,
    Option<(Vec<TraceEvent>, RunStats)>,
);

fn run_unit_serial<M>(
    jobs: &[Job<M>],
    fe: &FrontEnd,
    rep: usize,
    preps: &[Option<Result<Prep, PipelineError>>],
    live: Vec<(&Vec<usize>, Option<Vec<u32>>)>,
    source: UnitSource<'_>,
    record: bool,
) -> UnitOutput {
    let nproc = fe.nproc;
    let rep_layout = &prep_of(preps, rep).layout;
    let members: Vec<&Vec<usize>> = live.iter().map(|(g, _)| *g).collect();
    let group_sinks: Vec<GroupSink> = live
        .into_iter()
        .map(|(group, map)| {
            let bound_bytes = group_bound_bytes(preps, group);
            let sim_cfgs: Vec<CacheConfig> =
                group.iter().map(|&j| sim_cfg_of(jobs, j, nproc)).collect();
            let sinks = BankedSim::for_configs(&sim_cfgs, bound_bytes, 1)
                .into_iter()
                .zip(group)
                .map(|(sim, &j)| {
                    crate::PipelineSink::new(
                        sim,
                        TimingModel::new(jobs[j].cfg.machine, nproc),
                        jobs[j].cfg.engine,
                    )
                })
                .collect();
            GroupSink { map, sinks }
        })
        .collect();
    let mut tee = TeeSink::new(group_sinks);
    let mut recorded: Vec<TraceEvent> = Vec::new();

    let run_out: Result<RunStats, fsr_interp::RuntimeError> = match source {
        UnitSource::Replay { events, interp } => {
            for e in events {
                feed(&mut tee, e);
            }
            Ok(interp.clone())
        }
        UnitSource::Interp if record => {
            let mut rec = RecordingSink {
                events: &mut recorded,
                inner: &mut tee,
            };
            fsr_interp::run(&fe.prog, rep_layout, &fe.code, jobs[rep].cfg.run, &mut rec)
                .map(|fin| fin.stats)
        }
        UnitSource::Interp => {
            fsr_interp::run(&fe.prog, rep_layout, &fe.code, jobs[rep].cfg.run, &mut tee)
                .map(|fin| fin.stats)
        }
    };

    match run_out {
        Err(e) => (
            members
                .iter()
                .flat_map(|g| g.iter())
                .map(|&j| (j, Err(PipelineError::Runtime(e.clone()))))
                .collect(),
            None,
        ),
        Ok(stats) => {
            let out = tee
                .into_inner()
                .into_iter()
                .zip(members)
                .flat_map(|(gs, group)| {
                    gs.sinks
                        .into_iter()
                        .zip(group)
                        .map(|(sink, &j)| {
                            let prep = prep_of(preps, j);
                            let r =
                                sink.into_result(nproc, prep.plan.clone(), stats.clone(), |addr| {
                                    prep.layout
                                        .attribute(addr)
                                        .map(|oid| fe.prog.object(oid).name.clone())
                                });
                            (j, Ok(r))
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
            (out, record.then_some((recorded, stats)))
        }
    }
}

/// Per-segment event cap, so barrier-free programs still stream in
/// bounded pieces and the producer/consumer pipeline overlaps.
/// (Segment counts are reported per run in [`BatchStats::segments`] —
/// the old process-global counter accumulated stale totals in
/// long-lived daemons.)
const SEGMENT_CAP: usize = 1 << 15;

/// Sink on the interpreter's producer thread: buffers events and ships
/// them as segments, splitting after synchronization events (barrier
/// releases — the non-concurrency phase boundaries) when the program's
/// phase profile says barriers exist, and at a size cap always.
struct SegmentSink {
    tx: SyncSender<Vec<TraceEvent>>,
    buf: Vec<TraceEvent>,
    split_at_sync: bool,
    /// Receiver hung up (the consumer recorded a failure); keep
    /// interpreting for the final state but stop shipping.
    dead: bool,
    /// `Some` when the world's trace cache wants this unit's stream:
    /// every flushed segment is appended here too.
    recorded: Option<Vec<TraceEvent>>,
}

impl SegmentSink {
    fn new(tx: SyncSender<Vec<TraceEvent>>, split_at_sync: bool, record: bool) -> SegmentSink {
        SegmentSink {
            tx,
            buf: Vec::with_capacity(SEGMENT_CAP),
            split_at_sync,
            dead: false,
            recorded: record.then(Vec::new),
        }
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        if let Some(rec) = &mut self.recorded {
            rec.extend_from_slice(&self.buf);
        }
        if self.dead {
            self.buf.clear();
            return;
        }
        if self.tx.send(std::mem::take(&mut self.buf)).is_err() {
            self.dead = true;
        }
    }
}

impl TraceSink for SegmentSink {
    fn access(&mut self, r: MemRef) {
        self.buf.push(TraceEvent::Access(r));
        if self.buf.len() >= SEGMENT_CAP {
            self.flush();
        }
    }

    fn sync(&mut self, pids: &[u32]) {
        self.buf.push(TraceEvent::Sync(pids.to_vec()));
        if self.split_at_sync {
            // All clocks just aligned: a natural stitch point.
            self.flush();
        }
    }

    fn handoff(&mut self, from: u32, to: u32) {
        self.buf.push(TraceEvent::Handoff { from, to });
    }

    fn steal(&mut self, thief: u32, victim: u32) {
        self.buf.push(TraceEvent::Steal { thief, victim });
    }
}

/// One bank of one job's sharded simulator, plus the outcomes it
/// produced for the segment in flight.
struct BankCell {
    sim: MultiSim,
    /// Round-A outcomes in this bank's event order; consumed by the
    /// round-B cursor.
    outs: Vec<Outcome>,
    cursor: usize,
}

/// One member job's complete sharded state. Coherence state is
/// partitioned across `banks` and timing state lives in `timing` for
/// the whole run — segments mutate it in place, so stitching at segment
/// boundaries is exact (nothing is copied or re-derived).
struct ShardJob<'a> {
    job: usize,
    /// The job's group's word map (`None` = driving group, identity).
    map: Option<&'a Vec<u32>>,
    block_shift: u32,
    nbanks: u32,
    /// Hot-path engine for this job's banks: chunked engines batch each
    /// bank's owned references into fixed-width lanes in round A and
    /// replay the stitched outcome stream chunk-wise in round B.
    engine: SimEngine,
    banks: Vec<Mutex<BankCell>>,
    timing: Mutex<(TimingModel, Vec<u64>)>,
    failed: Mutex<Option<PipelineError>>,
}

/// Phase/bank-sharded unit engine. The interpreter produces phase
/// segments on its own thread; for each segment, round A simulates
/// every (job, bank) shard concurrently (each bank consumes the
/// addresses it owns, in program order), then round B replays the
/// segment per job in original event order against the timing model,
/// consuming round A's outcomes — so each job's clocks and channel
/// occupancy evolve exactly as in a serial run.
#[allow(clippy::too_many_arguments)]
fn run_unit_sharded<M: Sync + fmt::Debug>(
    jobs: &[Job<M>],
    fe: &FrontEnd,
    rep: usize,
    preps: &[Option<Result<Prep, PipelineError>>],
    live: &[(&Vec<usize>, Option<Vec<u32>>)],
    shard_threads: usize,
    strict_banks: bool,
    source: UnitSource<'_>,
    record: bool,
    rc: &RunCounters,
) -> UnitOutput {
    let nproc = fe.nproc;
    let rep_layout = &prep_of(preps, rep).layout;
    let split_at_sync = fsr_analysis::phase_profile(&fe.prog).splittable();

    // Jobs whose bank negotiation fails under forced sharding are
    // reported here and never enter the shard engine.
    let mut no_plan: Vec<(usize, Result<RunResult, PipelineError>)> = Vec::new();
    let mut shard_jobs: Vec<ShardJob> = Vec::new();
    for (group, map) in live {
        let bound_bytes = group_bound_bytes(preps, group);
        for &j in group.iter() {
            let sim_cfg = sim_cfg_of(jobs, j, nproc);
            let engine = jobs[j].cfg.engine;
            let nbanks = match BankedSim::negotiate_banks(&sim_cfg, engine, shard_threads) {
                Ok(k) => k,
                Err(e) if strict_banks => {
                    no_plan.push((
                        j,
                        Err(PipelineError::Driver(DriverError::BankPlan {
                            job_meta: format!("{:?}", jobs[j].meta),
                            detail: e.to_string(),
                        })),
                    ));
                    continue;
                }
                // Auto mode: banking is opportunistic — run unbanked.
                Err(_) => 1,
            };
            let sims: Vec<MultiSim> = (0..nbanks)
                .map(|b| MultiSim::new_bank(sim_cfg, bound_bytes, b, nbanks))
                .collect();
            let nblocks = sims[0].num_blocks() as usize;
            shard_jobs.push(ShardJob {
                job: j,
                map: map.as_ref(),
                block_shift: sim_cfg.block_bytes.trailing_zeros(),
                nbanks,
                engine,
                banks: sims
                    .into_iter()
                    .map(|sim| {
                        Mutex::new(BankCell {
                            sim,
                            outs: Vec::new(),
                            cursor: 0,
                        })
                    })
                    .collect(),
                timing: Mutex::new((
                    TimingModel::new(jobs[j].cfg.machine, nproc),
                    vec![0u64; nblocks],
                )),
                failed: Mutex::new(None),
            });
        }
    }

    // Round A's task list: every (job, bank) shard.
    let bank_tasks: Vec<(usize, u32)> = shard_jobs
        .iter()
        .enumerate()
        .flat_map(|(s, sj)| (0..sj.nbanks).map(move |b| (s, b)))
        .collect();

    let record_panic = |sj: &ShardJob, stage: &'static str, p: Box<dyn std::any::Any + Send>| {
        let e = worker_panic(stage, sj.job, jobs, panic_message(&*p));
        *sj.failed.lock().unwrap() = Some(e);
    };

    // Round A: one shard simulates the addresses its bank owns, pushing
    // outcomes in that bank's program order. Chunked engines batch the
    // bank's owned references into fixed-width lanes; chunk boundaries
    // are invisible in the results (the chunk replay is bit-identical to
    // per-reference replay for any batching).
    let round_a = |seg: &[TraceEvent], t: usize| {
        let (s, bank) = bank_tasks[t];
        let sj = &shard_jobs[s];
        if sj.failed.lock().unwrap().is_some() {
            return;
        }
        let r = catch_unwind(AssertUnwindSafe(|| {
            let cell = &mut *sj.banks[bank as usize].lock().unwrap();
            if sj.engine.chunked() {
                let mut pid = [0u8; CHUNK_LANES];
                let mut addr = [0u32; CHUNK_LANES];
                let mut write = 0u64;
                let mut n = 0usize;
                let mut flush = |pid: &[u8], addr: &[u32], write: u64, n: usize| {
                    let base = cell.outs.len();
                    cell.outs.resize(base + n, Outcome::default());
                    cell.sim
                        .access_chunk(&pid[..n], &addr[..n], write, &mut cell.outs[base..]);
                };
                for e in seg {
                    if let TraceEvent::Access(r) = e {
                        let a = translate(sj.map, r.addr);
                        if (a >> sj.block_shift) % sj.nbanks == bank {
                            pid[n] = r.pid;
                            addr[n] = a;
                            if r.write {
                                write |= 1 << n;
                            }
                            n += 1;
                            if n == CHUNK_LANES {
                                flush(&pid, &addr, write, n);
                                n = 0;
                                write = 0;
                            }
                        }
                    }
                }
                if n > 0 {
                    flush(&pid, &addr, write, n);
                }
            } else {
                for e in seg {
                    if let TraceEvent::Access(r) = e {
                        let addr = translate(sj.map, r.addr);
                        if (addr >> sj.block_shift) % sj.nbanks == bank {
                            let out = cell.sim.access_with(sj.engine, r.pid, addr, r.write);
                            cell.outs.push(out);
                        }
                    }
                }
            }
        }));
        if let Err(p) = r {
            record_panic(sj, "simulate", p);
        }
    };

    // Round B: the timing stitch — replay the segment's events in
    // original order, consuming each bank's outcomes through a cursor.
    // Chunked engines gather runs of consecutive accesses (between
    // synchronization events) and replay each run through the fused
    // `record_chunk` pass instead of one `record` call per reference.
    let round_b = |seg: &[TraceEvent], s: usize| {
        let sj = &shard_jobs[s];
        if sj.failed.lock().unwrap().is_some() {
            return;
        }
        let r = catch_unwind(AssertUnwindSafe(|| {
            let mut cells: Vec<_> = sj.banks.iter().map(|m| m.lock().unwrap()).collect();
            let mut guard = sj.timing.lock().unwrap();
            let (timing, block_queue) = &mut *guard;
            if sj.engine.chunked() {
                let mut pid = [0u8; CHUNK_LANES];
                let mut gap = [0u32; CHUNK_LANES];
                let mut outs = [Outcome::default(); CHUNK_LANES];
                let mut blocks = [0u32; CHUNK_LANES];
                let mut n = 0usize;
                let flush = |timing: &mut TimingModel,
                             block_queue: &mut Vec<u64>,
                             pid: &[u8],
                             gap: &[u32],
                             outs: &[Outcome],
                             blocks: &[u32],
                             n: usize| {
                    timing.record_chunk(&pid[..n], &gap[..n], &outs[..n], |lane, cost| {
                        block_queue[blocks[lane] as usize] += cost.queue;
                    });
                };
                for e in seg {
                    match e {
                        TraceEvent::Access(r) => {
                            let addr = translate(sj.map, r.addr);
                            let block = addr >> sj.block_shift;
                            let cell = &mut cells[(block % sj.nbanks) as usize];
                            let out = cell.outs[cell.cursor];
                            cell.cursor += 1;
                            pid[n] = r.pid;
                            gap[n] = r.gap;
                            outs[n] = out;
                            blocks[n] = block;
                            n += 1;
                            if n == CHUNK_LANES {
                                flush(timing, block_queue, &pid, &gap, &outs, &blocks, n);
                                n = 0;
                            }
                        }
                        TraceEvent::Sync(pids) => {
                            flush(timing, block_queue, &pid, &gap, &outs, &blocks, n);
                            n = 0;
                            timing.sync(pids);
                        }
                        TraceEvent::Handoff { from, to } => {
                            flush(timing, block_queue, &pid, &gap, &outs, &blocks, n);
                            n = 0;
                            timing.handoff(*from, *to);
                        }
                        TraceEvent::Steal { thief, victim } => {
                            flush(timing, block_queue, &pid, &gap, &outs, &blocks, n);
                            n = 0;
                            timing.steal(*thief, *victim);
                        }
                    }
                }
                flush(timing, block_queue, &pid, &gap, &outs, &blocks, n);
            } else {
                for e in seg {
                    match e {
                        TraceEvent::Access(r) => {
                            let addr = translate(sj.map, r.addr);
                            let block = addr >> sj.block_shift;
                            let cell = &mut cells[(block % sj.nbanks) as usize];
                            let out = cell.outs[cell.cursor];
                            cell.cursor += 1;
                            let cost = timing.record(r.pid, r.gap, &out);
                            if cost.queue > 0 {
                                block_queue[block as usize] += cost.queue;
                            }
                        }
                        TraceEvent::Sync(pids) => timing.sync(pids),
                        TraceEvent::Handoff { from, to } => timing.handoff(*from, *to),
                        TraceEvent::Steal { thief, victim } => timing.steal(*thief, *victim),
                    }
                }
            }
            for cell in cells.iter_mut() {
                debug_assert_eq!(
                    cell.cursor,
                    cell.outs.len(),
                    "stitch consumed every outcome"
                );
                cell.outs.clear();
                cell.cursor = 0;
            }
        }));
        if let Err(p) = r {
            record_panic(sj, "simulate", p);
        }
    };

    // Producer/consumer: the interpreter (or the trace replay) streams
    // segments from its own thread through a bounded channel, so segment
    // k+1 is produced while segment k simulates.
    let (tx, rx) = sync_channel::<Vec<TraceEvent>>(2);
    let run_cfg = jobs[rep].cfg.run;
    let produced = std::thread::scope(|scope| {
        let producer = scope.spawn(move || {
            let mut sink = SegmentSink::new(tx, split_at_sync, record);
            let r = match source {
                UnitSource::Interp => {
                    fsr_interp::run(&fe.prog, rep_layout, &fe.code, run_cfg, &mut sink)
                        .map(|fin| fin.stats)
                }
                UnitSource::Replay { events, interp } => {
                    for e in events {
                        feed(&mut sink, e);
                    }
                    Ok(interp.clone())
                }
            };
            sink.flush();
            (r, sink.recorded)
        });
        for seg in rx.iter() {
            rc.segments.fetch_add(1, Ordering::Relaxed);
            run_round(bank_tasks.len(), shard_threads, |t| round_a(&seg, t));
            run_round(shard_jobs.len(), shard_threads, |s| round_b(&seg, s));
        }
        producer.join()
    });

    let (mut out, recorded): UnitOutput = match produced {
        Err(p) => {
            let payload = panic_message(&*p);
            (
                shard_jobs
                    .into_iter()
                    .map(|sj| {
                        let ShardJob { job, failed, .. } = sj;
                        let e = failed.into_inner().unwrap().unwrap_or_else(|| {
                            worker_panic("interpret", job, jobs, payload.clone())
                        });
                        (job, Err(e))
                    })
                    .collect(),
                None,
            )
        }
        Ok((Err(e), _)) => (
            shard_jobs
                .into_iter()
                .map(|sj| {
                    let ShardJob { job, failed, .. } = sj;
                    let e = failed
                        .into_inner()
                        .unwrap()
                        .unwrap_or(PipelineError::Runtime(e.clone()));
                    (job, Err(e))
                })
                .collect(),
            None,
        ),
        Ok((Ok(stats), rec_events)) => {
            let out = shard_jobs
                .into_iter()
                .map(|sj| {
                    let ShardJob {
                        job: j,
                        engine,
                        banks,
                        timing,
                        failed,
                        ..
                    } = sj;
                    if let Some(e) = failed.into_inner().unwrap() {
                        return (j, Err(e));
                    }
                    let sims: Vec<MultiSim> = banks
                        .into_iter()
                        .map(|m| m.into_inner().unwrap().sim)
                        .collect();
                    let (timing, block_queue) = timing.into_inner().unwrap();
                    let sink = crate::PipelineSink {
                        sim: BankedSim::from_banks(sims),
                        timing,
                        block_queue,
                        engine,
                        chunk: crate::ChunkBuf::new(),
                    };
                    let prep = prep_of(preps, j);
                    let r = sink.into_result(nproc, prep.plan.clone(), stats.clone(), |addr| {
                        prep.layout
                            .attribute(addr)
                            .map(|oid| fe.prog.object(oid).name.clone())
                    });
                    (j, Ok(r))
                })
                .collect();
            (out, rec_events.map(|ev| (ev, stats)))
        }
    };
    out.append(&mut no_plan);
    (out, recorded)
}

/// Run `n` indexed tasks on up to `threads` scoped workers, clamped to
/// the task count — the shard pool obeys the same no-oversubscription
/// rule as [`effective_threads`]. `f` must not unwind (callers guard
/// with `catch_unwind` internally).
fn run_round(n: usize, threads: usize, f: impl Fn(usize) + Sync) {
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                f(i);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTERS: &str = "param NPROC = 2; shared int c[NPROC];
               fn main() { forall p in 0 .. NPROC { var i;
                   for i in 0 .. 50 { c[p] = c[p] + 1; } } }";

    fn block_jobs(blocks: &[u32]) -> Vec<Job<u32>> {
        blocks
            .iter()
            .map(|&b| Job {
                meta: b,
                src: Arc::from(COUNTERS),
                params: vec![],
                plan: PlanSourceSpec::Unoptimized,
                cfg: PipelineConfig::with_block(b),
            })
            .collect()
    }

    #[test]
    fn parallel_jobs_produce_ordered_results() {
        let out = run_jobs(block_jobs(&[16, 32, 64, 128]), 2);
        assert_eq!(out.len(), 4);
        for (i, (job, r)) in out.iter().enumerate() {
            assert_eq!(job.meta, [16, 32, 64, 128][i]);
            assert!(r.is_ok());
        }
        // Larger blocks: at least as much false sharing.
        let fs: Vec<u64> = out
            .iter()
            .map(|(_, r)| r.as_ref().unwrap().sim.false_sharing())
            .collect();
        assert!(fs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn errors_are_reported_per_job() {
        let jobs = vec![Job {
            meta: (),
            src: Arc::from("fn main() {"),
            params: vec![],
            plan: PlanSourceSpec::Unoptimized,
            cfg: PipelineConfig::default(),
        }];
        let out = run_jobs(jobs, 1);
        assert!(out[0].1.is_err());
    }

    #[test]
    fn effective_threads_clamps_to_job_count() {
        assert_eq!(effective_threads(8, 3), 3, "small batch, explicit pool");
        assert_eq!(effective_threads(2, 5), 2);
        assert_eq!(effective_threads(5, 5), 5);
        assert_eq!(effective_threads(3, 0), 1, "empty batch still gets one");
        // threads = 0 resolves available parallelism FIRST, then clamps:
        // a single job never gets more than one worker no matter how
        // wide the machine is.
        assert_eq!(effective_threads(0, 1), 1);
        assert!(effective_threads(0, 1000) >= 1);
    }

    #[test]
    fn batch_matches_reference_path_per_block() {
        let blocks = [16u32, 32, 64, 128];
        let reference = run_jobs(block_jobs(&blocks), 1);
        let (batched, stats) = run_batch_with_stats(block_jobs(&blocks), 1);
        assert_eq!(stats.jobs, 4);
        assert_eq!(stats.front_ends, 1, "one (source, params) key");
        // Unoptimized layouts ignore the block size: one shared trace.
        assert_eq!(stats.trace_groups, 1);
        assert_eq!(stats.interpretations, 1);
        for ((_, want), (job, got)) in reference.iter().zip(&batched) {
            let want = want.as_ref().unwrap();
            let got = got.as_ref().unwrap();
            assert_eq!(want.sim, got.sim, "block {}", job.meta);
            assert_eq!(want.per_obj, got.per_obj, "block {}", job.meta);
            assert_eq!(want.exec_cycles, got.exec_cycles, "block {}", job.meta);
            assert_eq!(want.timing, got.timing, "block {}", job.meta);
            assert_eq!(want.interp, got.interp, "block {}", job.meta);
        }
    }

    #[test]
    fn sharded_batch_is_bit_identical_to_serial() {
        let blocks = [16u32, 32, 64, 128];
        let serial = run_batch_sharded(block_jobs(&blocks), 1, ShardMode::Off);
        let (sharded, stats) =
            run_batch_sharded_with_stats(block_jobs(&blocks), 1, ShardMode::Force(3));
        assert!(stats.segments > 0, "Force must engage the segment engine");
        for ((_, want), (job, got)) in serial.iter().zip(&sharded) {
            let want = want.as_ref().unwrap();
            let got = got.as_ref().unwrap();
            assert_eq!(want.sim, got.sim, "block {}", job.meta);
            assert_eq!(want.per_obj, got.per_obj, "block {}", job.meta);
            assert_eq!(
                want.per_obj_coherence, got.per_obj_coherence,
                "block {}",
                job.meta
            );
            assert_eq!(want.per_obj_refs, got.per_obj_refs, "block {}", job.meta);
            assert_eq!(want.exec_cycles, got.exec_cycles, "block {}", job.meta);
            assert_eq!(want.timing, got.timing, "block {}", job.meta);
            assert_eq!(want.interp, got.interp, "block {}", job.meta);
        }
    }

    #[test]
    fn panicking_plan_reports_job_meta_and_spares_siblings() {
        let mut jobs = block_jobs(&[16, 32]);
        jobs.insert(
            1,
            Job {
                meta: 999,
                src: Arc::from(COUNTERS),
                params: vec![],
                plan: PlanSourceSpec::Programmer(|_, _| panic!("plan exploded deliberately")),
                cfg: PipelineConfig::with_block(64),
            },
        );
        let out = run_batch(jobs, 2);
        assert_eq!(out.len(), 3);
        match &out[1].1 {
            Err(PipelineError::Driver(DriverError::WorkerPanic {
                stage,
                job_index,
                job_meta,
                payload,
            })) => {
                assert_eq!(*stage, "plan/layout");
                assert_eq!(*job_index, 1);
                assert!(job_meta.contains("999"), "meta carried: {job_meta}");
                assert!(
                    payload.contains("plan exploded deliberately"),
                    "payload carried: {payload}"
                );
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        assert!(
            out[0].1.is_ok(),
            "sibling before the panicking job survives"
        );
        assert!(out[2].1.is_ok(), "sibling after the panicking job survives");
    }

    #[test]
    fn batch_splits_groups_when_layouts_differ() {
        // Compiler plans pad/transpose by block size: distinct traces.
        let jobs: Vec<Job<u32>> = [32u32, 128]
            .iter()
            .flat_map(|&b| {
                [PlanSourceSpec::Unoptimized, PlanSourceSpec::Compiler]
                    .into_iter()
                    .map(move |plan| Job {
                        meta: b,
                        src: Arc::from(COUNTERS),
                        params: vec![],
                        plan,
                        cfg: PipelineConfig::with_block(b),
                    })
            })
            .collect();
        let reference = run_jobs(jobs.clone(), 1);
        let (out, stats) = run_batch_with_stats(jobs, 0);
        assert_eq!(stats.front_ends, 1);
        assert_eq!(stats.analyses, 1);
        // 1 shared unoptimized group + one compiler group per block.
        assert_eq!(stats.trace_groups, 3);
        // All three groups are direct-only layouts of one front end, so
        // address translation collapses them into a single interpreter
        // pass...
        assert_eq!(stats.interpretations, 1);
        // ...whose translated statistics still match the reference path
        // exactly.
        for ((_, want), (job, got)) in reference.iter().zip(&out) {
            let want = want.as_ref().unwrap();
            let got = got.as_ref().unwrap();
            assert_eq!(want.sim, got.sim, "block {}", job.meta);
            assert_eq!(want.per_obj, got.per_obj, "block {}", job.meta);
            assert_eq!(want.exec_cycles, got.exec_cycles, "block {}", job.meta);
            assert_eq!(want.timing, got.timing, "block {}", job.meta);
        }
    }

    #[test]
    fn batch_reports_front_end_errors_per_job() {
        let jobs: Vec<Job<()>> = (0..3)
            .map(|_| Job {
                meta: (),
                src: Arc::from("fn main() {"),
                params: vec![],
                plan: PlanSourceSpec::Unoptimized,
                cfg: PipelineConfig::default(),
            })
            .collect();
        let (out, stats) = run_batch_with_stats(jobs, 1);
        assert_eq!(stats.front_ends, 1, "broken source compiled once");
        assert_eq!(stats.trace_groups, 0);
        assert_eq!(stats.interpretations, 0);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|(_, r)| r.is_err()));
    }

    #[test]
    fn batch_reports_runtime_errors_for_every_group_member() {
        let src = "shared int a[2]; fn main() { forall p in 0 .. 4 { a[p] = 1; } }";
        let jobs: Vec<Job<u32>> = [16u32, 64]
            .iter()
            .map(|&b| Job {
                meta: b,
                src: Arc::from(src),
                params: vec![],
                plan: PlanSourceSpec::Unoptimized,
                cfg: PipelineConfig::with_block(b),
            })
            .collect();
        let out = run_batch(jobs, 1);
        for (_, r) in &out {
            assert!(matches!(r, Err(PipelineError::Runtime(_))));
        }
    }

    #[test]
    fn sharded_path_reports_runtime_errors_too() {
        let src = "shared int a[2]; fn main() { forall p in 0 .. 4 { a[p] = 1; } }";
        let jobs: Vec<Job<u32>> = [16u32, 64]
            .iter()
            .map(|&b| Job {
                meta: b,
                src: Arc::from(src),
                params: vec![],
                plan: PlanSourceSpec::Unoptimized,
                cfg: PipelineConfig::with_block(b),
            })
            .collect();
        let out = run_batch_sharded(jobs, 1, ShardMode::Force(2));
        for (_, r) in &out {
            assert!(matches!(r, Err(PipelineError::Runtime(_))));
        }
    }
}
