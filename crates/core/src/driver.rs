//! Parallel experiment driver: runs independent pipeline configurations
//! across OS threads. Each configuration is a self-contained simulation,
//! so the driver is embarrassingly parallel — a scoped-thread worker pool
//! pulls jobs from a shared queue.

use crate::{run_pipeline, PipelineConfig, PipelineError, PlanSource, RunResult};
use parking_lot::Mutex;

/// One experiment job.
#[derive(Debug, Clone)]
pub struct Job {
    pub label: String,
    pub src: String,
    pub params: Vec<(String, i64)>,
    pub plan: PlanSourceSpec,
    pub cfg: PipelineConfig,
}

/// Cloneable plan-source description (function pointers are fine).
#[derive(Debug, Clone)]
pub enum PlanSourceSpec {
    Unoptimized,
    Compiler,
    Programmer(fn(&crate::Program, u32) -> crate::LayoutPlan),
    Explicit(crate::LayoutPlan),
}

impl From<&PlanSourceSpec> for PlanSource {
    fn from(s: &PlanSourceSpec) -> PlanSource {
        match s {
            PlanSourceSpec::Unoptimized => PlanSource::Unoptimized,
            PlanSourceSpec::Compiler => PlanSource::Compiler,
            PlanSourceSpec::Programmer(f) => PlanSource::Programmer(*f),
            PlanSourceSpec::Explicit(p) => PlanSource::Explicit(p.clone()),
        }
    }
}

/// Run all jobs, using up to `threads` worker threads (0 = available
/// parallelism). Results keep job order.
pub fn run_jobs(jobs: Vec<Job>, threads: usize) -> Vec<(Job, Result<RunResult, PipelineError>)> {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        threads
    }
    .min(jobs.len().max(1));

    let n = jobs.len();
    let queue = Mutex::new(0usize);
    let jobs_ref = &jobs;
    let mut results: Vec<Option<Result<RunResult, PipelineError>>> =
        (0..n).map(|_| None).collect();
    let results_mx = Mutex::new(&mut results);

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let idx = {
                    let mut q = queue.lock();
                    if *q >= n {
                        return;
                    }
                    let i = *q;
                    *q += 1;
                    i
                };
                let job = &jobs_ref[idx];
                let params: Vec<(&str, i64)> =
                    job.params.iter().map(|(k, v)| (k.as_str(), *v)).collect();
                let r = run_pipeline(&job.src, &params, (&job.plan).into(), &job.cfg);
                results_mx.lock()[idx] = Some(r);
            });
        }
    })
    .expect("worker panicked");

    jobs.into_iter()
        .zip(results.into_iter().map(|r| r.expect("job ran")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_jobs_produce_ordered_results() {
        let src = "param NPROC = 2; shared int c[NPROC];
                   fn main() { forall p in 0 .. NPROC { var i;
                       for i in 0 .. 50 { c[p] = c[p] + 1; } } }";
        let jobs: Vec<Job> = [16u32, 32, 64, 128]
            .iter()
            .map(|&b| Job {
                label: format!("b{b}"),
                src: src.to_string(),
                params: vec![],
                plan: PlanSourceSpec::Unoptimized,
                cfg: PipelineConfig::with_block(b),
            })
            .collect();
        let out = run_jobs(jobs, 2);
        assert_eq!(out.len(), 4);
        for (i, (job, r)) in out.iter().enumerate() {
            assert_eq!(job.label, format!("b{}", [16, 32, 64, 128][i]));
            assert!(r.is_ok());
        }
        // Larger blocks: at least as much false sharing.
        let fs: Vec<u64> = out
            .iter()
            .map(|(_, r)| r.as_ref().unwrap().sim.false_sharing())
            .collect();
        assert!(fs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn errors_are_reported_per_job() {
        let jobs = vec![Job {
            label: "bad".into(),
            src: "fn main() {".into(),
            params: vec![],
            plan: PlanSourceSpec::Unoptimized,
            cfg: PipelineConfig::default(),
        }];
        let out = run_jobs(jobs, 1);
        assert!(out[0].1.is_err());
    }
}
