//! The `World`: a persistent, snapshot-able artifact layer over the
//! pipeline, modeled on the language-server split of state into a
//! mutable world plus cheap read snapshots.
//!
//! A [`World`] owns two things:
//!
//! - a *document registry* (`name → current source text`), the only
//!   mutable state. Edits go through [`World::open`] / [`World::change`]
//!   and produce a new document map; [`Snapshot`]s taken earlier keep
//!   seeing the text they started with, so an in-flight request is never
//!   torn by a concurrent edit.
//! - *content-addressed artifact caches*, shared by every snapshot:
//!   checked programs + bytecode (+ lazily the sharing analysis) per
//!   (source, params), race-lint summaries per (source, params),
//!   recorded reference traces per (source, params, run config, layout
//!   fingerprint), and whole pipeline results per (source, params, plan,
//!   config). Keys embed the source *content*, never the document name,
//!   so two documents with identical text share every artifact and a
//!   stale entry can never be served for edited text.
//!
//! Invalidation is explicit and minimal: [`World::change`] evicts
//! exactly the cache entries keyed by the document's *previous* content
//! (and only if no other open document still holds that content);
//! entries for untouched sources keep their `Arc`s, pointer-identical —
//! `tests/world.rs` asserts both properties. Because the caches are
//! content-addressed, serving from them is exact: a warm request is
//! bit-identical to the one-shot pipeline, which `tests/serve.rs` pins
//! across concurrent clients.
//!
//! The batch driver ([`crate::driver`]) runs *on* a world: transient
//! entry points (`run_batch*`) build a throwaway [`World::transient`]
//! (front-end sharing only, exactly the old behavior), while a
//! persistent [`World::new`] additionally records traces and caches
//! results so a long-lived daemon (`fsr-serve`) performs zero new
//! interpreter passes for repeated work.

use crate::driver::{self, BatchStats, Job, JobResults, ShardMode};
use crate::{PipelineError, RunResult};
use fsr_interp::{RunConfig, RunStats, TraceEvent};
use fsr_lang::ast::{ElemTy, FieldId, ObjectKind};
use fsr_lang::diag::Diagnostics;
use fsr_layout::Layout;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Cache key for front-end artifacts: the source *content* plus the
/// parameter bindings. Hashing an `Arc<str>` hashes the text, so this
/// is the content fingerprint (with full equality resolving any hash
/// collision exactly).
pub(crate) type FeKey = (Arc<str>, Vec<(String, i64)>);

/// Shared front-end artifacts for one (source, params) key: the checked
/// program, its bytecode, the resolved process count, and — computed at
/// most once, on first demand — the sharing analysis, which the layout
/// planner and the race lint both consume.
pub struct FrontEnd {
    pub prog: Arc<crate::Program>,
    pub code: Arc<fsr_interp::Compiled>,
    pub nproc: u32,
    analysis: OnceLock<Result<Arc<crate::Analysis>, PipelineError>>,
}

impl FrontEnd {
    fn compile(src: &str, params: &[(String, i64)]) -> Result<FrontEnd, PipelineError> {
        let params: Vec<(&str, i64)> = params.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        let prog = fsr_lang::compile_with_params(src, &params)?;
        let nproc = crate::resolve_nproc(&prog)?;
        let code = fsr_interp::compile_program(&prog)?;
        Ok(FrontEnd {
            prog: Arc::new(prog),
            code: Arc::new(code),
            nproc,
            analysis: OnceLock::new(),
        })
    }

    /// The sharing analysis, computed on first call and shared by the
    /// planner and the race lint thereafter (an analysis failure is
    /// cached too, failing only the requests that need it).
    pub fn analysis(&self) -> Result<Arc<crate::Analysis>, PipelineError> {
        self.analysis_counted(None)
    }

    pub(crate) fn analysis_counted(
        &self,
        fresh: Option<&AtomicUsize>,
    ) -> Result<Arc<crate::Analysis>, PipelineError> {
        self.analysis
            .get_or_init(|| {
                if let Some(c) = fresh {
                    c.fetch_add(1, Ordering::Relaxed);
                }
                fsr_analysis::analyze(&self.prog)
                    .map(Arc::new)
                    .map_err(PipelineError::from)
            })
            .clone()
    }
}

impl fmt::Debug for FrontEnd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FrontEnd")
            .field("nproc", &self.nproc)
            .field("analyzed", &self.analysis.get().is_some())
            .finish()
    }
}

/// One cached race-lint run: the diagnostics plus the derived summary
/// fields the serving layer reports.
#[derive(Debug, Clone)]
pub struct LintSummary {
    pub diagnostics: Diagnostics,
    /// Names of objects carrying at least one reported race.
    pub racy: Vec<String>,
    /// Conflicting pairs suppressed as unprovable (see `fsr-analysis`).
    pub suppressed_pairs: usize,
    /// `(object label, reason)` for every suppressed access group,
    /// sorted by label.
    pub suppressed: Vec<(String, String)>,
    /// Whether dynamic refinement facts from a recorded trace were
    /// folded into the verdicts.
    pub refined: bool,
}

/// Extract dynamic refinement facts from a recorded reference trace:
/// shared-data objects where two *different* processes touched the same
/// word inside the same barrier generation, at least one writing. The
/// per-generation scoping mirrors the static phase analysis — accesses
/// ordered by an intervening barrier are never counted as conflicting,
/// so partition-rotation patterns (each process visiting every element
/// across *different* generations) produce no spurious witnesses.
///
/// Lock-ordered conflicts *are* reported here (handoff events are
/// ignored); the race pass's static lockset check is what decides
/// whether a witnessed overlap is actually unsynchronized, so a
/// lock-guarded counter still lints clean.
///
/// Granularity is per object: a witness on any field of a struct
/// object marks every `(obj, field)` group of that object.
pub fn refine_facts_from(
    prog: &crate::Program,
    layout: &Layout,
    events: &[TraceEvent],
) -> fsr_analysis::RefineFacts {
    let mut conflicted: std::collections::BTreeSet<fsr_lang::ast::ObjId> = Default::default();
    // Per-word (reader, writer) pid masks within the current generation.
    let mut readers: HashMap<u32, u64> = HashMap::new();
    let mut writers: HashMap<u32, u64> = HashMap::new();
    for e in events {
        match e {
            TraceEvent::Sync(_) => {
                readers.clear();
                writers.clear();
            }
            // Hand-off and steal edges are ordering-only: like
            // lock-ordered conflicts, steal-ordered overlaps stay
            // visible as witnesses and the static passes decide what
            // they mean.
            TraceEvent::Handoff { .. } | TraceEvent::Steal { .. } => {}
            TraceEvent::Access(r) => {
                let bit = 1u64 << u32::from(r.pid).min(63);
                let wr = writers.entry(r.addr).or_insert(0);
                let rd = readers.entry(r.addr).or_insert(0);
                if r.write {
                    *wr |= bit;
                } else {
                    *rd |= bit;
                }
                let conflict = (*wr & !bit) != 0 || (r.write && ((*rd | *wr) & !bit) != 0);
                if conflict {
                    if let Some(oid) = layout.attribute(r.addr) {
                        if prog.object(oid).kind == ObjectKind::SharedData {
                            conflicted.insert(oid);
                        }
                    }
                }
            }
        }
    }
    let mut facts = fsr_analysis::RefineFacts::default();
    for oid in conflicted {
        facts.conflicting.insert((oid, None));
        if let ElemTy::Struct(sid) = prog.object(oid).elem {
            for f in 0..prog.struct_(sid).fields.len() {
                facts.conflicting.insert((oid, Some(FieldId(f as u32))));
            }
        }
    }
    facts
}

/// One cached reference trace: the event stream of a translation unit,
/// the interpreter statistics of the recording run, and the driving
/// layout (kept so a fingerprint match is confirmed exactly with
/// [`Layout::trace_eq`] before the recording is reused).
pub(crate) struct CachedTrace {
    pub events: Arc<Vec<TraceEvent>>,
    pub interp: RunStats,
    pub layout: Layout,
}

type TraceKey = (FeKey, RunConfig, u64);
/// (front-end key, plan spec description, pipeline config description).
/// The descriptions are the `Debug` renderings — exhaustive over every
/// knob, so two keys are equal iff the jobs are identical.
type ResultKey = (FeKey, String, String);

/// Per-run tallies the driver folds into its [`BatchStats`].
#[derive(Default)]
pub(crate) struct RunCounters {
    pub fe_fresh: AtomicUsize,
    pub fe_hits: AtomicUsize,
    pub analyses: AtomicUsize,
    pub interpretations: AtomicUsize,
    pub trace_hits: AtomicUsize,
    pub segments: AtomicU64,
}

#[derive(Default)]
struct HitMiss {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl HitMiss {
    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }
}

/// The content-addressed artifact caches, shared by every snapshot of a
/// world. Entries are immutable once inserted; concurrent computes of
/// the same key race benignly (first insert wins, keeping `Arc`s
/// pointer-stable for everyone).
pub(crate) struct Caches {
    /// Cache whole pipeline results per (source, params, plan, config).
    pub cache_results: bool,
    /// Record and replay per-unit reference traces.
    pub cache_traces: bool,
    fronts: Mutex<HashMap<FeKey, Result<Arc<FrontEnd>, PipelineError>>>,
    /// Keyed by (content, refined?): a refined summary folds dynamic
    /// trace facts into the verdicts, so it must never be served for a
    /// plain request (or vice versa).
    lints: Mutex<HashMap<(FeKey, bool), Arc<LintSummary>>>,
    traces: Mutex<HashMap<TraceKey, Arc<CachedTrace>>>,
    results: Mutex<HashMap<ResultKey, Arc<RunResult>>>,
    fe_ctr: HitMiss,
    lint_ctr: HitMiss,
    trace_ctr: HitMiss,
    result_ctr: HitMiss,
}

impl Caches {
    fn new(persist: bool) -> Caches {
        Caches {
            cache_results: persist,
            cache_traces: persist,
            fronts: Mutex::new(HashMap::new()),
            lints: Mutex::new(HashMap::new()),
            traces: Mutex::new(HashMap::new()),
            results: Mutex::new(HashMap::new()),
            fe_ctr: HitMiss::default(),
            lint_ctr: HitMiss::default(),
            trace_ctr: HitMiss::default(),
            result_ctr: HitMiss::default(),
        }
    }

    /// Front-end artifacts for (src, params), compiled at most once per
    /// content. With `want_analysis`, the sharing analysis is ensured
    /// (and memoized on the front end) before returning.
    pub(crate) fn front_end(
        &self,
        src: &Arc<str>,
        params: &[(String, i64)],
        want_analysis: bool,
        rc: &RunCounters,
    ) -> Result<Arc<FrontEnd>, PipelineError> {
        let key: FeKey = (src.clone(), params.to_vec());
        let cached = self.fronts.lock().unwrap().get(&key).cloned();
        let fe = match cached {
            Some(r) => {
                rc.fe_hits.fetch_add(1, Ordering::Relaxed);
                self.fe_ctr.hit();
                r
            }
            None => {
                rc.fe_fresh.fetch_add(1, Ordering::Relaxed);
                self.fe_ctr.miss();
                let fresh = FrontEnd::compile(src, params).map(Arc::new);
                self.fronts
                    .lock()
                    .unwrap()
                    .entry(key)
                    .or_insert(fresh)
                    .clone()
            }
        }?;
        if want_analysis {
            // Memoize (and count) the analysis now; a failure is
            // reported later, only against the jobs that consume it.
            let _ = fe.analysis_counted(Some(&rc.analyses));
        }
        Ok(fe)
    }

    /// Race-lint summary for (src, params), computed at most once per
    /// (content, refined?). Returns the summary and whether it was
    /// served warm. With `refine`, a reference trace is recorded (or
    /// reused from the trace cache) under the unoptimized layout and
    /// its conflict witnesses upgrade statically-unprovable pairs (see
    /// [`refine_facts_from`]).
    pub(crate) fn lint(
        &self,
        src: &Arc<str>,
        params: &[(String, i64)],
        refine: bool,
    ) -> Result<(Arc<LintSummary>, bool), PipelineError> {
        let rc = RunCounters::default();
        let fe = self.front_end(src, params, false, &rc)?;
        let fe_key: FeKey = (src.clone(), params.to_vec());
        let key = (fe_key.clone(), refine);
        if let Some(s) = self.lints.lock().unwrap().get(&key).cloned() {
            self.lint_ctr.hit();
            return Ok((s, true));
        }
        self.lint_ctr.miss();
        let analysis = fe.analysis()?;
        let refine_facts = if refine {
            let cfg = crate::PipelineConfig::default();
            let plan = crate::LayoutPlan::unoptimized(cfg.block_bytes);
            let layout = Layout::try_build(&fe.prog, &plan, fe.nproc)?;
            let tkey: TraceKey = (fe_key, cfg.run, layout.trace_fingerprint());
            let events = match self.trace_get(&tkey, &layout) {
                Some(ct) => ct.events.clone(),
                None => {
                    let rec = crate::record_trace(&fe.prog, crate::PlanSource::Unoptimized, &cfg)?;
                    let events = Arc::new(rec.events);
                    if self.cache_traces {
                        self.trace_put(
                            tkey,
                            CachedTrace {
                                events: events.clone(),
                                interp: rec.interp,
                                layout: layout.clone(),
                            },
                        );
                    }
                    events
                }
            };
            Some(refine_facts_from(&fe.prog, &layout, &events))
        } else {
            None
        };
        let report = fsr_analysis::detect_with(&fe.prog, &analysis, refine_facts.as_ref());
        let racy = report
            .racy_objects()
            .iter()
            .map(|&o| fe.prog.object(o).name.clone())
            .collect();
        let suppressed = report
            .suppressed
            .iter()
            .map(|g| {
                (
                    fsr_analysis::access_label(&fe.prog, g.obj, g.field),
                    g.reason.to_string(),
                )
            })
            .collect();
        let summary = Arc::new(LintSummary {
            racy,
            suppressed_pairs: report.suppressed_pairs,
            suppressed,
            refined: refine,
            diagnostics: report.diagnostics,
        });
        let s = self
            .lints
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(summary)
            .clone();
        Ok((s, false))
    }

    /// A cached recording for this unit key, confirmed exact against
    /// the requesting layout (a fingerprint collision reads as a miss).
    pub(crate) fn trace_get(&self, key: &TraceKey, layout: &Layout) -> Option<Arc<CachedTrace>> {
        let hit = self
            .traces
            .lock()
            .unwrap()
            .get(key)
            .filter(|ct| ct.layout.trace_eq(layout))
            .cloned();
        match &hit {
            Some(_) => self.trace_ctr.hit(),
            None => self.trace_ctr.miss(),
        }
        hit
    }

    pub(crate) fn trace_put(&self, key: TraceKey, trace: CachedTrace) {
        self.traces
            .lock()
            .unwrap()
            .entry(key)
            .or_insert_with(|| Arc::new(trace));
    }

    pub(crate) fn result_get(&self, key: &ResultKey) -> Option<Arc<RunResult>> {
        let hit = self.results.lock().unwrap().get(key).cloned();
        match &hit {
            Some(_) => self.result_ctr.hit(),
            None => self.result_ctr.miss(),
        }
        hit
    }

    pub(crate) fn result_put(&self, key: ResultKey, result: Arc<RunResult>) {
        self.results.lock().unwrap().entry(key).or_insert(result);
    }

    /// Drop every cache entry keyed by this exact source content.
    fn evict_src(&self, src: &str) -> Evicted {
        let mut ev = Evicted::default();
        let mut fronts = self.fronts.lock().unwrap();
        let before = fronts.len();
        fronts.retain(|(s, _), _| **s != *src);
        ev.front_ends = before - fronts.len();
        drop(fronts);
        let mut lints = self.lints.lock().unwrap();
        let before = lints.len();
        lints.retain(|((s, _), _), _| **s != *src);
        ev.lints = before - lints.len();
        drop(lints);
        let mut traces = self.traces.lock().unwrap();
        let before = traces.len();
        traces.retain(|((s, _), _, _), _| **s != *src);
        ev.traces = before - traces.len();
        drop(traces);
        let mut results = self.results.lock().unwrap();
        let before = results.len();
        results.retain(|((s, _), _, _), _| **s != *src);
        ev.results = before - results.len();
        ev
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            front_ends: self.fronts.lock().unwrap().len(),
            fe_hits: self.fe_ctr.hits.load(Ordering::Relaxed),
            fe_misses: self.fe_ctr.misses.load(Ordering::Relaxed),
            lints: self.lints.lock().unwrap().len(),
            lint_hits: self.lint_ctr.hits.load(Ordering::Relaxed),
            lint_misses: self.lint_ctr.misses.load(Ordering::Relaxed),
            traces: self.traces.lock().unwrap().len(),
            trace_hits: self.trace_ctr.hits.load(Ordering::Relaxed),
            trace_misses: self.trace_ctr.misses.load(Ordering::Relaxed),
            results: self.results.lock().unwrap().len(),
            result_hits: self.result_ctr.hits.load(Ordering::Relaxed),
            result_misses: self.result_ctr.misses.load(Ordering::Relaxed),
        }
    }
}

/// How many cache entries an edit removed, per cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Evicted {
    pub front_ends: usize,
    pub lints: usize,
    pub traces: usize,
    pub results: usize,
}

impl Evicted {
    pub fn total(&self) -> usize {
        self.front_ends + self.lints + self.traces + self.results
    }
}

/// Point-in-time cache occupancy and lifetime hit/miss counters — the
/// honesty numbers `fsr-serve` reports and `serve_bench` records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub front_ends: usize,
    pub fe_hits: u64,
    pub fe_misses: u64,
    pub lints: usize,
    pub lint_hits: u64,
    pub lint_misses: u64,
    pub traces: usize,
    pub trace_hits: u64,
    pub trace_misses: u64,
    pub results: usize,
    pub result_hits: u64,
    pub result_misses: u64,
}

/// The mutable world: the document registry plus the shared caches.
/// See the module docs for the architecture.
pub struct World {
    docs: Arc<HashMap<String, Arc<str>>>,
    caches: Arc<Caches>,
}

impl World {
    /// A persistent world: front ends, lint summaries, traces, and
    /// results are all cached across requests.
    pub fn new() -> World {
        World {
            docs: Arc::new(HashMap::new()),
            caches: Arc::new(Caches::new(true)),
        }
    }

    /// A throwaway world for one batch: front-end artifacts are shared
    /// *within* the run (exactly the old `run_batch` behavior), but
    /// nothing is recorded or retained beyond it.
    pub fn transient() -> World {
        World {
            docs: Arc::new(HashMap::new()),
            caches: Arc::new(Caches::new(false)),
        }
    }

    /// A consistent read view: the document map as of now, plus the
    /// shared caches. Cloning is two `Arc` bumps.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            docs: self.docs.clone(),
            caches: self.caches.clone(),
        }
    }

    /// Open (or replace) a document. Replacing different text evicts
    /// the replaced content's cache entries, like [`World::change`].
    pub fn open(&mut self, name: &str, text: impl Into<Arc<str>>) -> Evicted {
        let text = text.into();
        let old = Arc::make_mut(&mut self.docs).insert(name.to_string(), text);
        match old {
            Some(old) => self.evict_if_unreferenced(&old),
            None => Evicted::default(),
        }
    }

    /// Replace an open document's text, evicting exactly the cache
    /// entries keyed by its previous content (unless another open
    /// document still holds that content). Returns `None` if the
    /// document was never opened.
    pub fn change(&mut self, name: &str, text: impl Into<Arc<str>>) -> Option<Evicted> {
        if !self.docs.contains_key(name) {
            return None;
        }
        Some(self.open(name, text))
    }

    /// Close a document, evicting its content's entries (unless shared
    /// with another open document).
    pub fn close(&mut self, name: &str) -> Evicted {
        match Arc::make_mut(&mut self.docs).remove(name) {
            Some(old) => self.evict_if_unreferenced(&old),
            None => Evicted::default(),
        }
    }

    fn evict_if_unreferenced(&self, old: &Arc<str>) -> Evicted {
        // Content-addressed caches: another document with the same text
        // still owns these entries, so eviction would be a false evict.
        if self.docs.values().any(|t| *t == *old) {
            return Evicted::default();
        }
        self.caches.evict_src(old)
    }

    pub fn doc(&self, name: &str) -> Option<Arc<str>> {
        self.docs.get(name).cloned()
    }

    pub fn doc_count(&self) -> usize {
        self.docs.len()
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.caches.stats()
    }
}

impl Default for World {
    fn default() -> Self {
        World::new()
    }
}

/// A cheap, consistent read view over a [`World`]: the frozen document
/// map plus the shared content-addressed caches. Every serving request
/// clones one of these and works unlocked.
#[derive(Clone)]
pub struct Snapshot {
    docs: Arc<HashMap<String, Arc<str>>>,
    caches: Arc<Caches>,
}

impl Snapshot {
    pub(crate) fn caches(&self) -> &Caches {
        &self.caches
    }

    pub fn doc(&self, name: &str) -> Option<Arc<str>> {
        self.docs.get(name).cloned()
    }

    /// Shared front-end artifacts for this source content (compiled at
    /// most once per content across all snapshots of the world).
    pub fn front_end(
        &self,
        src: &Arc<str>,
        params: &[(String, i64)],
    ) -> Result<Arc<FrontEnd>, PipelineError> {
        self.caches
            .front_end(src, params, false, &RunCounters::default())
    }

    /// Race-lint summary for this source content, cached per content.
    /// The `bool` reports whether the summary was served warm.
    pub fn lint(
        &self,
        src: &Arc<str>,
        params: &[(String, i64)],
    ) -> Result<(Arc<LintSummary>, bool), PipelineError> {
        self.caches.lint(src, params, false)
    }

    /// [`Snapshot::lint`] with dynamic refinement: a recorded reference
    /// trace supplies conflict witnesses that upgrade
    /// statically-unprovable pairs (cached separately from the plain
    /// summary; the recording itself lands in the shared trace cache).
    pub fn lint_refined(
        &self,
        src: &Arc<str>,
        params: &[(String, i64)],
    ) -> Result<(Arc<LintSummary>, bool), PipelineError> {
        self.caches.lint(src, params, true)
    }

    /// [`crate::driver::run_batch`] on this world's caches.
    pub fn run_batch<M: Sync + fmt::Debug>(
        &self,
        jobs: Vec<Job<M>>,
        threads: usize,
    ) -> JobResults<M> {
        self.run_batch_sharded_with_stats(jobs, threads, ShardMode::Auto)
            .0
    }

    /// [`crate::driver::run_batch_sharded_with_stats`] on this world's
    /// caches: repeated identical jobs are served from the result cache
    /// (zero interpreter passes), units matching a recorded trace are
    /// replayed without re-interpreting, and everything else runs the
    /// full engine — bit-identical to the transient path throughout.
    pub fn run_batch_sharded_with_stats<M: Sync + fmt::Debug>(
        &self,
        jobs: Vec<Job<M>>,
        threads: usize,
        shard: ShardMode,
    ) -> (JobResults<M>, BatchStats) {
        driver::run_batch_in(&self.caches, jobs, threads, shard, None)
    }

    /// Streaming variant: `notify` fires exactly once per job, from the
    /// worker that resolved it (cache hits fire immediately, in
    /// submission order), before the full results are returned.
    pub fn run_batch_streaming<M: Sync + fmt::Debug>(
        &self,
        jobs: Vec<Job<M>>,
        threads: usize,
        shard: ShardMode,
        notify: driver::BatchNotify<'_>,
    ) -> (JobResults<M>, BatchStats) {
        driver::run_batch_in(&self.caches, jobs, threads, shard, Some(notify))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::PlanSourceSpec;
    use crate::PipelineConfig;

    const COUNTERS: &str = "param NPROC = 2; shared int c[NPROC];
        fn main() { forall p in 0 .. NPROC { var i;
            for i in 0 .. 50 { c[p] = c[p] + 1; } } }";

    fn job(src: &Arc<str>, block: u32) -> Job<u32> {
        Job {
            meta: block,
            src: src.clone(),
            params: vec![],
            plan: PlanSourceSpec::Unoptimized,
            cfg: PipelineConfig::with_block(block),
        }
    }

    #[test]
    fn snapshot_shares_front_ends_pointer_equal() {
        let world = World::new();
        let snap = world.snapshot();
        let src: Arc<str> = Arc::from(COUNTERS);
        let a = snap.front_end(&src, &[]).unwrap();
        let b = snap.front_end(&src, &[]).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // Same content through a different Arc still hits.
        let src2: Arc<str> = Arc::from(COUNTERS);
        let c = snap.front_end(&src2, &[]).unwrap();
        assert!(Arc::ptr_eq(&a, &c));
        let stats = world.cache_stats();
        assert_eq!(stats.front_ends, 1);
        assert_eq!(stats.fe_misses, 1);
        assert_eq!(stats.fe_hits, 2);
    }

    #[test]
    fn warm_world_serves_results_without_interpreting() {
        let world = World::new();
        let snap = world.snapshot();
        let src: Arc<str> = Arc::from(COUNTERS);
        let (cold, s1) = snap.run_batch_sharded_with_stats(
            vec![job(&src, 32), job(&src, 64)],
            1,
            ShardMode::Off,
        );
        assert_eq!(s1.result_hits, 0);
        assert_eq!(s1.interpretations, 1);
        let (warm, s2) = snap.run_batch_sharded_with_stats(
            vec![job(&src, 32), job(&src, 64)],
            1,
            ShardMode::Off,
        );
        assert_eq!(s2.result_hits, 2, "whole batch served from cache");
        assert_eq!(s2.interpretations, 0);
        assert_eq!(s2.front_ends, 0);
        for ((_, want), (_, got)) in cold.iter().zip(&warm) {
            let (want, got) = (want.as_ref().unwrap(), got.as_ref().unwrap());
            assert_eq!(want.sim, got.sim);
            assert_eq!(want.exec_cycles, got.exec_cycles);
            assert_eq!(want.timing, got.timing);
        }
    }

    #[test]
    fn change_evicts_only_the_edited_content() {
        let mut world = World::new();
        world.open("a", COUNTERS);
        let other = COUNTERS.replace("50", "60");
        world.open("b", other);
        let snap = world.snapshot();
        let a_src = snap.doc("a").unwrap();
        let b_src = snap.doc("b").unwrap();
        let fe_a = snap.front_end(&a_src, &[]).unwrap();
        let _ = snap.front_end(&b_src, &[]).unwrap();
        assert_eq!(world.cache_stats().front_ends, 2);

        let ev = world.change("b", COUNTERS.replace("50", "70")).unwrap();
        assert_eq!(ev.front_ends, 1, "only b's entry evicted");
        assert_eq!(world.cache_stats().front_ends, 1);
        let fe_a2 = world.snapshot().front_end(&a_src, &[]).unwrap();
        assert!(
            Arc::ptr_eq(&fe_a, &fe_a2),
            "a's artifacts survive untouched"
        );
    }

    #[test]
    fn shared_content_is_not_evicted_while_referenced() {
        let mut world = World::new();
        world.open("a", COUNTERS);
        world.open("b", COUNTERS);
        let snap = world.snapshot();
        let src = snap.doc("a").unwrap();
        let _ = snap.front_end(&src, &[]).unwrap();
        let ev = world.change("b", "fn main() { }").unwrap();
        assert_eq!(ev, Evicted::default(), "a still holds the content");
        assert_eq!(world.cache_stats().front_ends, 1);
    }

    #[test]
    fn change_of_unknown_doc_is_none() {
        let mut world = World::new();
        assert!(world.change("nope", "x").is_none());
    }

    #[test]
    fn lint_summary_is_cached_per_content() {
        let world = World::new();
        let snap = world.snapshot();
        let src: Arc<str> = Arc::from(COUNTERS);
        let (first, warm1) = snap.lint(&src, &[]).unwrap();
        assert!(!warm1);
        let (second, warm2) = snap.lint(&src, &[]).unwrap();
        assert!(warm2);
        assert!(Arc::ptr_eq(&first, &second));
    }
}
