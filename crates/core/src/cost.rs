//! Compile-cost accounting — the paper's "only 5% of total compile time"
//! claim (§3.1/§7).
//!
//! Measures where front-end time goes: baseline work every compiler does
//! (lexing, parsing, checking, code generation) versus the paper's added
//! analyses (per-process control flow, phases, side-effect summaries,
//! classification, transformation planning).

use std::time::{Duration, Instant};

/// Wall-clock breakdown of one compilation.
#[derive(Debug, Clone, Default)]
pub struct CompileCost {
    pub parse_check: Duration,
    pub codegen: Duration,
    pub analysis: Duration,
    pub planning: Duration,
}

impl CompileCost {
    pub fn total(&self) -> Duration {
        self.parse_check + self.codegen + self.analysis + self.planning
    }

    /// Fraction of compile time spent in the false-sharing analyses.
    pub fn analysis_fraction(&self) -> f64 {
        let t = self.total().as_secs_f64();
        if t == 0.0 {
            return 0.0;
        }
        (self.analysis + self.planning).as_secs_f64() / t
    }
}

/// Compile a program measuring each stage.
pub fn measure(src: &str, params: &[(&str, i64)]) -> Result<CompileCost, crate::PipelineError> {
    let mut cost = CompileCost::default();

    let t = Instant::now();
    let prog = fsr_lang::compile_with_params(src, params)?;
    cost.parse_check = t.elapsed();

    let t = Instant::now();
    let _code = fsr_interp::compile_program(&prog)?;
    cost.codegen = t.elapsed();

    let t = Instant::now();
    let analysis = fsr_analysis::analyze(&prog)?;
    cost.analysis = t.elapsed();

    let t = Instant::now();
    let _plan = fsr_transform::plan_for(&prog, &analysis, &fsr_transform::PlanConfig::default());
    cost.planning = t.elapsed();

    Ok(cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_all_stages() {
        let src = "param NPROC = 4; shared int c[NPROC];
                   fn main() { forall p in 0 .. NPROC { var i;
                       for i in 0 .. 100 { c[p] = c[p] + 1; } } }";
        let cost = measure(src, &[]).unwrap();
        assert!(cost.total() > Duration::ZERO);
        let f = cost.analysis_fraction();
        assert!((0.0..=1.0).contains(&f));
    }
}
