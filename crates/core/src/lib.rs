//! End-to-end pipeline: PSL source → analysis → transformation plan →
//! layout → SPMD execution → cache simulation → KSR2-style timing.
//!
//! This crate is the public face of the reproduction. A single call to
//! [`run_pipeline`] does what the paper's toolchain did: compile-time
//! analysis and restructuring (Parafrase-2 + the authors' passes), inline
//! tracing, trace-driven multiprocessor cache simulation, and execution
//! timing on the ring machine model.
//!
//! # Example
//! ```
//! use fsr_core::{run_pipeline, PipelineConfig, PlanSource};
//!
//! let src = "param NPROC = 4; shared int c[NPROC];
//!            fn main() { forall p in 0 .. NPROC { var i;
//!                for i in 0 .. 200 { c[p] = c[p] + 1; } } }";
//! let base = run_pipeline(src, &[], PlanSource::Unoptimized,
//!                         &PipelineConfig::default()).unwrap();
//! let opt = run_pipeline(src, &[], PlanSource::Compiler,
//!                        &PipelineConfig::default()).unwrap();
//! assert!(opt.sim.false_sharing() < base.sim.false_sharing());
//! ```

pub mod cost;
pub mod driver;
pub mod experiments;

pub use fsr_analysis::{Analysis, Pattern};
pub use fsr_lang::Program;
pub use fsr_machine::{
    Interconnect, InterconnectKind, MachineConfig, SpeedupCurve, TimingStats, TxCost,
};
pub use fsr_sim::{
    report::{ObjCoherence, ObjMisses},
    CacheConfig, CoherenceEvent, CoherenceProtocol, MissKind, ProtocolKind, SimStats,
};
pub use fsr_transform::{LayoutPlan, ObjPlan, PlanConfig};

use fsr_interp::{MemRef, RunConfig, RunStats, TraceSink};
use fsr_machine::TimingModel;
use fsr_sim::BankedSim;
use std::collections::BTreeMap;
use std::fmt;

/// Where the layout plan comes from.
#[derive(Clone)]
pub enum PlanSource {
    /// Original declaration-order packed layout ("N" versions).
    Unoptimized,
    /// The compiler's analysis + §3.3 heuristics ("C" versions).
    Compiler,
    /// A hand-written plan ("P" programmer versions), built from the
    /// checked program.
    Programmer(fn(&Program, u32) -> LayoutPlan),
    /// An explicit plan (ablation studies).
    Explicit(LayoutPlan),
}

impl fmt::Debug for PlanSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PlanSource::Unoptimized => "Unoptimized",
            PlanSource::Compiler => "Compiler",
            PlanSource::Programmer(_) => "Programmer",
            PlanSource::Explicit(_) => "Explicit",
        };
        write!(f, "{s}")
    }
}

/// Everything configurable about one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Block size used for both the plan and the cache simulation.
    pub block_bytes: u32,
    /// L1 capacity and associativity.
    pub cache_bytes: u32,
    pub assoc: u32,
    /// Coherence protocol the cache simulator runs (MSI is the paper's).
    pub protocol: ProtocolKind,
    /// Machine/timing parameters, including the interconnect topology
    /// (`machine.interconnect`; the KSR2 ring is the paper's).
    pub machine: MachineConfig,
    pub run: RunConfig,
    pub plan_cfg: PlanConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            block_bytes: 128,
            cache_bytes: 32 * 1024,
            assoc: 4,
            protocol: ProtocolKind::Msi,
            machine: MachineConfig::default(),
            run: RunConfig::default(),
            plan_cfg: PlanConfig::default(),
        }
    }
}

impl PipelineConfig {
    pub fn with_block(block_bytes: u32) -> PipelineConfig {
        let mut c = PipelineConfig {
            block_bytes,
            ..PipelineConfig::default()
        };
        c.plan_cfg.block_bytes = block_bytes;
        c
    }

    /// Select a (protocol, interconnect) backend pair, leaving every
    /// other knob alone.
    pub fn with_backends(mut self, protocol: ProtocolKind, ic: InterconnectKind) -> PipelineConfig {
        self.protocol = protocol;
        self.machine.interconnect = ic;
        self
    }
}

/// Result of one pipeline run.
#[derive(Debug)]
pub struct RunResult {
    pub nproc: u32,
    pub plan: LayoutPlan,
    pub sim: SimStats,
    pub per_obj: BTreeMap<String, ObjMisses>,
    /// Per-object coherence-event counters (invalidations, upgrades,
    /// interventions, exclusive hits) plus interconnect queueing stalls,
    /// attributed via the layout address map.
    pub per_obj_coherence: BTreeMap<String, ObjCoherence>,
    /// Per-object reference counts (hits and misses alike), attributed
    /// via the layout address map. A pure function of the trace and the
    /// layout — bit-identical across coherence backends, which the
    /// cross-backend equivalence suite asserts.
    pub per_obj_refs: BTreeMap<String, u64>,
    /// Execution time (cycles) on the machine model.
    pub exec_cycles: u64,
    pub timing: TimingStats,
    pub interp: RunStats,
    /// False-sharing stall fraction of total cycles.
    pub fs_stall_frac: f64,
}

impl RunResult {
    pub fn miss_rate(&self) -> f64 {
        self.sim.miss_rate()
    }

    pub fn false_sharing_miss_rate(&self) -> f64 {
        if self.sim.refs == 0 {
            0.0
        } else {
            self.sim.false_sharing() as f64 / self.sim.refs as f64
        }
    }
}

/// Pipeline errors. `Clone` lets the batched driver report one shared
/// front-end or interpretation failure against every affected job.
#[derive(Debug, Clone)]
pub enum PipelineError {
    Lang(fsr_lang::Error),
    Runtime(fsr_interp::RuntimeError),
    /// The layout engine could not assign addresses (e.g. the plan's
    /// padded/replicated footprint overflows the 32-bit address space).
    Layout(fsr_layout::LayoutError),
    /// The program declares no usable process count (no constant-bound
    /// `forall`, or a count the simulator cannot represent). The
    /// pipeline refuses to guess — silently simulating a malformed
    /// program as a uniprocessor run hides the error.
    Nproc(fsr_analysis::NprocError),
    /// The driver machinery itself failed (worker panic, batch grouping
    /// bug) — see [`driver::DriverError`].
    Driver(driver::DriverError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Lang(e) => write!(f, "{e}"),
            PipelineError::Runtime(e) => write!(f, "{e}"),
            PipelineError::Layout(e) => write!(f, "{e}"),
            PipelineError::Nproc(e) => write!(f, "{e}"),
            PipelineError::Driver(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<fsr_lang::Error> for PipelineError {
    fn from(e: fsr_lang::Error) -> Self {
        PipelineError::Lang(e)
    }
}

impl From<fsr_interp::RuntimeError> for PipelineError {
    fn from(e: fsr_interp::RuntimeError) -> Self {
        PipelineError::Runtime(e)
    }
}

impl From<fsr_layout::LayoutError> for PipelineError {
    fn from(e: fsr_layout::LayoutError) -> Self {
        PipelineError::Layout(e)
    }
}

impl From<fsr_analysis::NprocError> for PipelineError {
    fn from(e: fsr_analysis::NprocError) -> Self {
        PipelineError::Nproc(e)
    }
}

impl From<driver::DriverError> for PipelineError {
    fn from(e: driver::DriverError) -> Self {
        PipelineError::Driver(e)
    }
}

/// The process count a simulation of `prog` must use: the constant
/// `forall` bounds, strictly validated. Shared by [`run_pipeline`] and
/// the batch driver so neither path can degrade a malformed program to
/// a silent uniprocessor run.
pub fn resolve_nproc(prog: &Program) -> Result<u32, PipelineError> {
    Ok(fsr_analysis::require_nproc(prog)? as u32)
}

/// Sink wiring the interpreter to the cache simulator and timing model.
/// Also accumulates per-block interconnect queueing stalls (the sink is
/// the one place that sees both the address and the transaction cost),
/// so queue pressure can be attributed per object alongside the
/// simulator's coherence events.
struct PipelineSink {
    sim: BankedSim,
    timing: TimingModel,
    block_queue: Vec<u64>,
}

impl PipelineSink {
    fn new(sim: BankedSim, timing: TimingModel) -> PipelineSink {
        let nblocks = sim.num_blocks() as usize;
        PipelineSink {
            sim,
            timing,
            block_queue: vec![0; nblocks],
        }
    }

    /// Fold the finished sink into a [`RunResult`], attributing misses,
    /// coherence events and queueing stalls per object through
    /// `name_of` (layout address → object name).
    fn into_result(
        self,
        nproc: u32,
        plan: LayoutPlan,
        interp: RunStats,
        mut name_of: impl FnMut(u32) -> Option<String>,
    ) -> RunResult {
        let per_obj = fsr_sim::report::attribute_misses_banked(&self.sim, &mut name_of);
        let mut per_obj_coherence =
            fsr_sim::report::attribute_coherence_banked(&self.sim, &mut name_of);
        let bb = self.sim.block_bytes();
        for (b, &q) in self.block_queue.iter().enumerate() {
            if q == 0 {
                continue;
            }
            let name = name_of(b as u32 * bb).unwrap_or_else(|| "<unattributed>".to_string());
            per_obj_coherence.entry(name).or_default().queue_stall += q;
        }
        let mut per_obj_refs: BTreeMap<String, u64> = BTreeMap::new();
        for (b, n) in self.sim.per_block_refs().into_iter().enumerate() {
            if n == 0 {
                continue;
            }
            let name = name_of(b as u32 * bb).unwrap_or_else(|| "<unattributed>".to_string());
            *per_obj_refs.entry(name).or_default() += n;
        }
        RunResult {
            nproc,
            plan,
            sim: self.sim.stats(),
            per_obj,
            per_obj_coherence,
            per_obj_refs,
            exec_cycles: self.timing.finish_time(),
            timing: self.timing.stats().clone(),
            interp,
            fs_stall_frac: self.timing.false_sharing_stall_fraction(),
        }
    }
}

impl TraceSink for PipelineSink {
    fn access(&mut self, r: MemRef) {
        let outcome = self.sim.access(r.pid, r.addr, r.write);
        let cost = self.timing.record(r.pid, r.gap, &outcome);
        if cost.queue > 0 {
            self.block_queue[(r.addr / self.sim.block_bytes()) as usize] += cost.queue;
        }
    }

    fn sync(&mut self, pids: &[u32]) {
        self.timing.sync(pids);
    }

    fn handoff(&mut self, from: u32, to: u32) {
        self.timing.handoff(from, to);
    }
}

/// Build the layout plan for a checked program.
pub fn plan_of(
    prog: &Program,
    source: &PlanSource,
    cfg: &PipelineConfig,
) -> Result<LayoutPlan, PipelineError> {
    Ok(match source {
        PlanSource::Unoptimized => LayoutPlan::unoptimized(cfg.block_bytes),
        PlanSource::Compiler => {
            let analysis = fsr_analysis::analyze(prog)?;
            let mut plan_cfg = cfg.plan_cfg;
            plan_cfg.block_bytes = cfg.block_bytes;
            fsr_transform::plan_for(prog, &analysis, &plan_cfg)
        }
        PlanSource::Programmer(f) => f(prog, cfg.block_bytes),
        PlanSource::Explicit(p) => {
            let mut p = p.clone();
            p.block_bytes = cfg.block_bytes;
            p
        }
    })
}

/// Run the full pipeline on PSL source text.
///
/// `params` override `param` declarations (e.g. `[("NPROC", 12)]`); the
/// process count is taken from the program's `forall` bounds after
/// binding.
pub fn run_pipeline(
    src: &str,
    params: &[(&str, i64)],
    plan_source: PlanSource,
    cfg: &PipelineConfig,
) -> Result<RunResult, PipelineError> {
    let prog = fsr_lang::compile_with_params(src, params)?;
    run_pipeline_checked(&prog, plan_source, cfg)
}

/// Run the pipeline on an already-checked program.
pub fn run_pipeline_checked(
    prog: &Program,
    plan_source: PlanSource,
    cfg: &PipelineConfig,
) -> Result<RunResult, PipelineError> {
    let nproc = resolve_nproc(prog)?;
    let plan = plan_of(prog, &plan_source, cfg)?;
    let layout = fsr_layout::Layout::try_build(prog, &plan, nproc)?;
    let code = fsr_interp::compile_program(prog)?;

    let sim_cfg = fsr_sim::CacheConfig {
        nproc,
        block_bytes: cfg.block_bytes,
        cache_bytes: cfg.cache_bytes,
        assoc: cfg.assoc,
        protocol: cfg.protocol,
    };
    let mut sink = PipelineSink::new(
        BankedSim::new(sim_cfg, layout.total_words() * 4, 1),
        TimingModel::new(cfg.machine, nproc),
    );
    let fin = fsr_interp::run(prog, &layout, &code, cfg.run, &mut sink)?;

    Ok(sink.into_result(nproc, plan, fin.stats, |addr| {
        layout
            .attribute(addr)
            .map(|oid| prog.object(oid).name.clone())
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTERS: &str = "param NPROC = 4; shared int c[NPROC];
        fn main() { forall p in 0 .. NPROC { var i;
            for i in 0 .. 500 { c[p] = c[p] + 1; } } }";

    #[test]
    fn compiler_plan_removes_false_sharing() {
        let cfg = PipelineConfig::default();
        let base = run_pipeline(COUNTERS, &[], PlanSource::Unoptimized, &cfg).unwrap();
        let opt = run_pipeline(COUNTERS, &[], PlanSource::Compiler, &cfg).unwrap();
        assert!(
            base.sim.false_sharing() > 100,
            "unoptimized adjacent counters must false-share: {}",
            base.sim
        );
        assert_eq!(
            opt.sim.false_sharing(),
            0,
            "transposed counters must not false-share: {}",
            opt.sim
        );
        assert!(opt.exec_cycles < base.exec_cycles);
    }

    #[test]
    fn per_object_attribution_names_the_culprit() {
        let cfg = PipelineConfig::default();
        let base = run_pipeline(COUNTERS, &[], PlanSource::Unoptimized, &cfg).unwrap();
        let c = base.per_obj.get("c").expect("attributed");
        assert!(c.false_sharing() > 100);
    }

    #[test]
    fn nproc_override_applies() {
        let cfg = PipelineConfig::default();
        let r = run_pipeline(COUNTERS, &[("NPROC", 2)], PlanSource::Unoptimized, &cfg).unwrap();
        assert_eq!(r.nproc, 2);
    }

    #[test]
    fn explicit_plan_is_used() {
        let prog = fsr_lang::compile(COUNTERS).unwrap();
        let (c, _) = prog.object_by_name("c").unwrap();
        let mut plan = LayoutPlan::unoptimized(128);
        plan.insert(c, ObjPlan::PadElems, "test");
        let cfg = PipelineConfig::default();
        let r = run_pipeline(COUNTERS, &[], PlanSource::Explicit(plan), &cfg).unwrap();
        assert_eq!(r.sim.false_sharing(), 0);
    }

    #[test]
    fn block_size_sweep_shows_monotone_false_sharing() {
        let mut last = 0;
        for block in [16u32, 64, 256] {
            let cfg = PipelineConfig::with_block(block);
            let r = run_pipeline(COUNTERS, &[], PlanSource::Unoptimized, &cfg).unwrap();
            assert!(
                r.sim.false_sharing() >= last,
                "false sharing should not shrink with larger blocks"
            );
            last = r.sim.false_sharing();
        }
        assert!(last > 0);
    }

    #[test]
    fn lang_errors_propagate() {
        let cfg = PipelineConfig::default();
        let e = run_pipeline("fn main() {", &[], PlanSource::Unoptimized, &cfg).unwrap_err();
        assert!(matches!(e, PipelineError::Lang(_)));
    }

    #[test]
    fn oversized_process_counts_are_errors_not_panics() {
        // 100 processes exceeds the simulator's 64-way sharing vectors;
        // the pipeline must refuse with a diagnostic instead of tripping
        // an assert (or silently running as a uniprocessor).
        let cfg = PipelineConfig::default();
        let e =
            run_pipeline(COUNTERS, &[("NPROC", 100)], PlanSource::Unoptimized, &cfg).unwrap_err();
        assert!(matches!(
            e,
            PipelineError::Nproc(fsr_analysis::NprocError::OutOfRange(100))
        ));
    }

    #[test]
    fn runtime_errors_propagate() {
        let cfg = PipelineConfig::default();
        let e = run_pipeline(
            "shared int a[2]; fn main() { forall p in 0 .. 4 { a[p] = 1; } }",
            &[],
            PlanSource::Unoptimized,
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(e, PipelineError::Runtime(_)));
    }
}
