//! End-to-end pipeline: PSL source → analysis → transformation plan →
//! layout → SPMD execution → cache simulation → KSR2-style timing.
//!
//! This crate is the public face of the reproduction. A single call to
//! [`run_pipeline`] does what the paper's toolchain did: compile-time
//! analysis and restructuring (Parafrase-2 + the authors' passes), inline
//! tracing, trace-driven multiprocessor cache simulation, and execution
//! timing on the ring machine model.
//!
//! # Example
//! ```
//! use fsr_core::{run_pipeline, PipelineConfig, PlanSource};
//!
//! let src = "param NPROC = 4; shared int c[NPROC];
//!            fn main() { forall p in 0 .. NPROC { var i;
//!                for i in 0 .. 200 { c[p] = c[p] + 1; } } }";
//! let base = run_pipeline(src, &[], PlanSource::Unoptimized,
//!                         &PipelineConfig::default()).unwrap();
//! let opt = run_pipeline(src, &[], PlanSource::Compiler,
//!                        &PipelineConfig::default()).unwrap();
//! assert!(opt.sim.false_sharing() < base.sim.false_sharing());
//! ```

pub mod cost;
pub mod driver;
pub mod experiments;
pub mod world;

pub use world::{refine_facts_from, CacheStats, Evicted, LintSummary, Snapshot, World};

pub use fsr_analysis::{Analysis, Pattern};
pub use fsr_interp::{RunConfig, Schedule};
pub use fsr_lang::Program;
pub use fsr_machine::{
    Interconnect, InterconnectKind, MachineConfig, SpeedupCurve, TimingStats, TxCost,
};
pub use fsr_sim::{
    report::{ObjCoherence, ObjMisses},
    CacheConfig, CoherenceEvent, CoherenceProtocol, MissKind, ProtocolKind, SimEngine, SimStats,
};
pub use fsr_transform::{LayoutPlan, ObjPlan, PlanConfig};

use fsr_interp::{MemRef, RunStats, TraceEvent, TraceSink};
use fsr_machine::TimingModel;
use fsr_sim::{BankedSim, Outcome, CHUNK_LANES};
use std::collections::BTreeMap;
use std::fmt;

/// Where the layout plan comes from.
#[derive(Clone)]
pub enum PlanSource {
    /// Original declaration-order packed layout ("N" versions).
    Unoptimized,
    /// The compiler's analysis + §3.3 heuristics ("C" versions).
    Compiler,
    /// A hand-written plan ("P" programmer versions), built from the
    /// checked program.
    Programmer(fn(&Program, u32) -> LayoutPlan),
    /// An explicit plan (ablation studies).
    Explicit(LayoutPlan),
}

impl fmt::Debug for PlanSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PlanSource::Unoptimized => "Unoptimized",
            PlanSource::Compiler => "Compiler",
            PlanSource::Programmer(_) => "Programmer",
            PlanSource::Explicit(_) => "Explicit",
        };
        write!(f, "{s}")
    }
}

/// Everything configurable about one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Block size used for both the plan and the cache simulation.
    pub block_bytes: u32,
    /// L1 capacity and associativity.
    pub cache_bytes: u32,
    pub assoc: u32,
    /// Coherence protocol the cache simulator runs (MSI is the paper's).
    pub protocol: ProtocolKind,
    /// Machine/timing parameters, including the interconnect topology
    /// (`machine.interconnect`; the KSR2 ring is the paper's).
    pub machine: MachineConfig,
    pub run: RunConfig,
    pub plan_cfg: PlanConfig,
    /// Simulator hot-path engine (see [`SimEngine`]). Every engine is
    /// bit-identical; the default is the chunked SoA path.
    pub engine: SimEngine,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            block_bytes: 128,
            cache_bytes: 32 * 1024,
            assoc: 4,
            protocol: ProtocolKind::Msi,
            machine: MachineConfig::default(),
            run: RunConfig::default(),
            plan_cfg: PlanConfig::default(),
            engine: SimEngine::default(),
        }
    }
}

impl PipelineConfig {
    pub fn with_block(block_bytes: u32) -> PipelineConfig {
        let mut c = PipelineConfig {
            block_bytes,
            ..PipelineConfig::default()
        };
        c.plan_cfg.block_bytes = block_bytes;
        c
    }

    /// Select a (protocol, interconnect) backend pair, leaving every
    /// other knob alone.
    pub fn with_backends(mut self, protocol: ProtocolKind, ic: InterconnectKind) -> PipelineConfig {
        self.protocol = protocol;
        self.machine.interconnect = ic;
        self
    }

    /// Select the simulator engine, leaving every other knob alone.
    pub fn with_engine(mut self, engine: SimEngine) -> PipelineConfig {
        self.engine = engine;
        self
    }
}

/// Result of one pipeline run. `Clone` lets a warm [`World`] serve a
/// cached result to any number of identical requests.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub nproc: u32,
    pub plan: LayoutPlan,
    pub sim: SimStats,
    pub per_obj: BTreeMap<String, ObjMisses>,
    /// Per-object coherence-event counters (invalidations, upgrades,
    /// interventions, exclusive hits) plus interconnect queueing stalls,
    /// attributed via the layout address map.
    pub per_obj_coherence: BTreeMap<String, ObjCoherence>,
    /// Per-object reference counts (hits and misses alike), attributed
    /// via the layout address map. A pure function of the trace and the
    /// layout — bit-identical across coherence backends, which the
    /// cross-backend equivalence suite asserts.
    pub per_obj_refs: BTreeMap<String, u64>,
    /// Execution time (cycles) on the machine model.
    pub exec_cycles: u64,
    pub timing: TimingStats,
    pub interp: RunStats,
    /// False-sharing stall fraction of total cycles.
    pub fs_stall_frac: f64,
}

impl RunResult {
    pub fn miss_rate(&self) -> f64 {
        self.sim.miss_rate()
    }

    pub fn false_sharing_miss_rate(&self) -> f64 {
        if self.sim.refs == 0 {
            0.0
        } else {
            self.sim.false_sharing() as f64 / self.sim.refs as f64
        }
    }
}

/// Pipeline errors. `Clone` lets the batched driver report one shared
/// front-end or interpretation failure against every affected job.
#[derive(Debug, Clone)]
pub enum PipelineError {
    Lang(fsr_lang::Error),
    Runtime(fsr_interp::RuntimeError),
    /// The layout engine could not assign addresses (e.g. the plan's
    /// padded/replicated footprint overflows the 32-bit address space).
    Layout(fsr_layout::LayoutError),
    /// The program declares no usable process count (no constant-bound
    /// `forall`, or a count the simulator cannot represent). The
    /// pipeline refuses to guess — silently simulating a malformed
    /// program as a uniprocessor run hides the error.
    Nproc(fsr_analysis::NprocError),
    /// The driver machinery itself failed (worker panic, batch grouping
    /// bug) — see [`driver::DriverError`].
    Driver(driver::DriverError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Lang(e) => write!(f, "{e}"),
            PipelineError::Runtime(e) => write!(f, "{e}"),
            PipelineError::Layout(e) => write!(f, "{e}"),
            PipelineError::Nproc(e) => write!(f, "{e}"),
            PipelineError::Driver(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<fsr_lang::Error> for PipelineError {
    fn from(e: fsr_lang::Error) -> Self {
        PipelineError::Lang(e)
    }
}

impl From<fsr_interp::RuntimeError> for PipelineError {
    fn from(e: fsr_interp::RuntimeError) -> Self {
        PipelineError::Runtime(e)
    }
}

impl From<fsr_layout::LayoutError> for PipelineError {
    fn from(e: fsr_layout::LayoutError) -> Self {
        PipelineError::Layout(e)
    }
}

impl From<fsr_analysis::NprocError> for PipelineError {
    fn from(e: fsr_analysis::NprocError) -> Self {
        PipelineError::Nproc(e)
    }
}

impl From<driver::DriverError> for PipelineError {
    fn from(e: driver::DriverError) -> Self {
        PipelineError::Driver(e)
    }
}

/// The process count a simulation of `prog` must use: the constant
/// `forall` bounds, strictly validated. Shared by [`run_pipeline`] and
/// the batch driver so neither path can degrade a malformed program to
/// a silent uniprocessor run.
pub fn resolve_nproc(prog: &Program) -> Result<u32, PipelineError> {
    Ok(fsr_analysis::require_nproc(prog)? as u32)
}

/// Fixed-width lane buffer for the chunked engine: references
/// accumulate here until [`CHUNK_LANES`] are pending (or a
/// synchronization event forces a flush), then replay as one batch
/// through [`BankedSim::access_chunk`] + `TimingModel::record_chunk`.
struct ChunkBuf {
    len: usize,
    pid: [u8; CHUNK_LANES],
    addr: [u32; CHUNK_LANES],
    gap: [u32; CHUNK_LANES],
    /// Bit `i` set = lane `i` is a write.
    write: u64,
}

impl ChunkBuf {
    fn new() -> ChunkBuf {
        ChunkBuf {
            len: 0,
            pid: [0; CHUNK_LANES],
            addr: [0; CHUNK_LANES],
            gap: [0; CHUNK_LANES],
            write: 0,
        }
    }
}

/// Sink wiring the interpreter to the cache simulator and timing model.
/// Also accumulates per-block interconnect queueing stalls (the sink is
/// the one place that sees both the address and the transaction cost),
/// so queue pressure can be attributed per object alongside the
/// simulator's coherence events.
struct PipelineSink {
    sim: BankedSim,
    timing: TimingModel,
    block_queue: Vec<u64>,
    engine: SimEngine,
    chunk: ChunkBuf,
}

impl PipelineSink {
    fn new(sim: BankedSim, timing: TimingModel, engine: SimEngine) -> PipelineSink {
        let nblocks = sim.num_blocks() as usize;
        PipelineSink {
            sim,
            timing,
            block_queue: vec![0; nblocks],
            engine,
            chunk: ChunkBuf::new(),
        }
    }

    /// Replay every buffered reference: one lane-parallel simulator
    /// batch, then one fused timing pass over the outcome stream. A
    /// no-op when nothing is buffered (and always, on the per-reference
    /// engines, which never buffer).
    fn flush_chunk(&mut self) {
        let PipelineSink {
            sim,
            timing,
            block_queue,
            chunk,
            ..
        } = self;
        let n = chunk.len;
        if n == 0 {
            return;
        }
        let bb = sim.block_bytes();
        let mut outs = [Outcome::default(); CHUNK_LANES];
        sim.access_chunk(
            &chunk.pid[..n],
            &chunk.addr[..n],
            chunk.write,
            &mut outs[..n],
        );
        timing.record_chunk(
            &chunk.pid[..n],
            &chunk.gap[..n],
            &outs[..n],
            |lane, cost| {
                block_queue[(chunk.addr[lane] / bb) as usize] += cost.queue;
            },
        );
        chunk.len = 0;
        chunk.write = 0;
    }

    /// Fold the finished sink into a [`RunResult`], attributing misses,
    /// coherence events and queueing stalls per object through
    /// `name_of` (layout address → object name).
    fn into_result(
        mut self,
        nproc: u32,
        plan: LayoutPlan,
        interp: RunStats,
        mut name_of: impl FnMut(u32) -> Option<String>,
    ) -> RunResult {
        self.flush_chunk();
        let per_obj = fsr_sim::report::attribute_misses_banked(&self.sim, &mut name_of);
        let mut per_obj_coherence =
            fsr_sim::report::attribute_coherence_banked(&self.sim, &mut name_of);
        let bb = self.sim.block_bytes();
        for (b, &q) in self.block_queue.iter().enumerate() {
            if q == 0 {
                continue;
            }
            let name = name_of(b as u32 * bb).unwrap_or_else(|| "<unattributed>".to_string());
            per_obj_coherence.entry(name).or_default().queue_stall += q;
        }
        let mut per_obj_refs: BTreeMap<String, u64> = BTreeMap::new();
        for (b, n) in self.sim.per_block_refs().into_iter().enumerate() {
            if n == 0 {
                continue;
            }
            let name = name_of(b as u32 * bb).unwrap_or_else(|| "<unattributed>".to_string());
            *per_obj_refs.entry(name).or_default() += n;
        }
        RunResult {
            nproc,
            plan,
            sim: self.sim.stats(),
            per_obj,
            per_obj_coherence,
            per_obj_refs,
            exec_cycles: self.timing.finish_time(),
            timing: self.timing.stats().clone(),
            interp,
            fs_stall_frac: self.timing.false_sharing_stall_fraction(),
        }
    }
}

impl TraceSink for PipelineSink {
    fn access(&mut self, r: MemRef) {
        if self.engine.chunked() {
            let i = self.chunk.len;
            self.chunk.pid[i] = r.pid;
            self.chunk.addr[i] = r.addr;
            self.chunk.gap[i] = r.gap;
            if r.write {
                self.chunk.write |= 1 << i;
            }
            self.chunk.len = i + 1;
            if self.chunk.len == CHUNK_LANES {
                self.flush_chunk();
            }
            return;
        }
        let outcome = self.sim.access_with(self.engine, r.pid, r.addr, r.write);
        let cost = self.timing.record(r.pid, r.gap, &outcome);
        if cost.queue > 0 {
            self.block_queue[(r.addr / self.sim.block_bytes()) as usize] += cost.queue;
        }
    }

    fn sync(&mut self, pids: &[u32]) {
        // Barrier release: clocks are about to align across processors,
        // so pending lanes must land first.
        self.flush_chunk();
        self.timing.sync(pids);
    }

    fn handoff(&mut self, from: u32, to: u32) {
        self.flush_chunk();
        self.timing.handoff(from, to);
    }

    fn steal(&mut self, thief: u32, victim: u32) {
        // The steal joins the thief's clock to the victim's, so pending
        // lanes must land first, exactly like a hand-off.
        self.flush_chunk();
        self.timing.steal(thief, victim);
    }
}

/// Build the layout plan for a checked program.
pub fn plan_of(
    prog: &Program,
    source: &PlanSource,
    cfg: &PipelineConfig,
) -> Result<LayoutPlan, PipelineError> {
    Ok(match source {
        PlanSource::Unoptimized => LayoutPlan::unoptimized(cfg.block_bytes),
        PlanSource::Compiler => {
            let analysis = fsr_analysis::analyze(prog)?;
            let mut plan_cfg = cfg.plan_cfg;
            plan_cfg.block_bytes = cfg.block_bytes;
            fsr_transform::plan_for(prog, &analysis, &plan_cfg)
        }
        PlanSource::Programmer(f) => f(prog, cfg.block_bytes),
        PlanSource::Explicit(p) => {
            let mut p = p.clone();
            p.block_bytes = cfg.block_bytes;
            p
        }
    })
}

/// Run the full pipeline on PSL source text.
///
/// `params` override `param` declarations (e.g. `[("NPROC", 12)]`); the
/// process count is taken from the program's `forall` bounds after
/// binding.
pub fn run_pipeline(
    src: &str,
    params: &[(&str, i64)],
    plan_source: PlanSource,
    cfg: &PipelineConfig,
) -> Result<RunResult, PipelineError> {
    let prog = fsr_lang::compile_with_params(src, params)?;
    run_pipeline_checked(&prog, plan_source, cfg)
}

/// Run the pipeline on an already-checked program.
pub fn run_pipeline_checked(
    prog: &Program,
    plan_source: PlanSource,
    cfg: &PipelineConfig,
) -> Result<RunResult, PipelineError> {
    let nproc = resolve_nproc(prog)?;
    let plan = plan_of(prog, &plan_source, cfg)?;
    let layout = fsr_layout::Layout::try_build(prog, &plan, nproc)?;
    let code = fsr_interp::compile_program(prog)?;

    let sim_cfg = fsr_sim::CacheConfig {
        nproc,
        block_bytes: cfg.block_bytes,
        cache_bytes: cfg.cache_bytes,
        assoc: cfg.assoc,
        protocol: cfg.protocol,
    };
    let mut sink = PipelineSink::new(
        BankedSim::new(sim_cfg, layout.total_words() * 4, 1),
        TimingModel::new(cfg.machine, nproc),
        cfg.engine,
    );
    let fin = fsr_interp::run(prog, &layout, &code, cfg.run, &mut sink)?;

    Ok(sink.into_result(nproc, plan, fin.stats, |addr| {
        layout
            .attribute(addr)
            .map(|oid| prog.object(oid).name.clone())
    }))
}

/// A reference trace recorded once through the front half of the
/// pipeline (parse, plan, lay out, interpret), ready to replay through
/// [`replay_trace`] any number of times. The trace depends on the
/// program, its parameters, and the layout plan — never on the
/// coherence protocol, interconnect, or simulator engine — so one
/// recording serves every backend and engine combination.
pub struct RecordedTrace {
    pub events: Vec<TraceEvent>,
    pub nproc: u32,
    /// Bytes of simulated address space the layout occupies.
    pub addr_space_bytes: u32,
    pub interp: RunStats,
}

impl RecordedTrace {
    /// Memory references in the trace (excluding sync/handoff events).
    pub fn num_refs(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Access(_)))
            .count()
    }
}

/// Run the front half of the pipeline once and capture the reference
/// trace instead of simulating it. Pair with [`replay_trace`] to
/// measure the simulation + timing back half in isolation: the
/// interpreter's work is identical for every engine, so timing only
/// the replay isolates exactly the code an engine selection changes
/// (this is `bench_simd`'s measurement path).
pub fn record_trace(
    prog: &Program,
    plan_source: PlanSource,
    cfg: &PipelineConfig,
) -> Result<RecordedTrace, PipelineError> {
    struct Rec {
        events: Vec<TraceEvent>,
    }
    impl TraceSink for Rec {
        fn access(&mut self, r: MemRef) {
            self.events.push(TraceEvent::Access(r));
        }
        fn sync(&mut self, pids: &[u32]) {
            self.events.push(TraceEvent::Sync(pids.to_vec()));
        }
        fn handoff(&mut self, from: u32, to: u32) {
            self.events.push(TraceEvent::Handoff { from, to });
        }
        fn steal(&mut self, thief: u32, victim: u32) {
            self.events.push(TraceEvent::Steal { thief, victim });
        }
    }
    let nproc = resolve_nproc(prog)?;
    let plan = plan_of(prog, &plan_source, cfg)?;
    let layout = fsr_layout::Layout::try_build(prog, &plan, nproc)?;
    let code = fsr_interp::compile_program(prog)?;
    let mut rec = Rec { events: Vec::new() };
    let fin = fsr_interp::run(prog, &layout, &code, cfg.run, &mut rec)?;
    Ok(RecordedTrace {
        events: rec.events,
        nproc,
        addr_space_bytes: layout.total_words() * 4,
        interp: fin.stats,
    })
}

/// What one trace replay produced — the backend-dependent half of a
/// [`RunResult`], for cross-engine equivalence assertions.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayResult {
    pub sim: SimStats,
    pub exec_cycles: u64,
    pub fs_stall_frac: f64,
}

/// Replay a recorded trace through the simulation + timing back half
/// of the pipeline, exactly as [`run_pipeline`] would have driven it
/// (same sink path, chunked buffering included), honoring
/// `cfg`'s protocol, interconnect, and engine selection.
pub fn replay_trace(trace: &RecordedTrace, cfg: &PipelineConfig) -> ReplayResult {
    let sim_cfg = fsr_sim::CacheConfig {
        nproc: trace.nproc,
        block_bytes: cfg.block_bytes,
        cache_bytes: cfg.cache_bytes,
        assoc: cfg.assoc,
        protocol: cfg.protocol,
    };
    let mut sink = PipelineSink::new(
        BankedSim::new(sim_cfg, trace.addr_space_bytes, 1),
        TimingModel::new(cfg.machine, trace.nproc),
        cfg.engine,
    );
    for e in &trace.events {
        match e {
            TraceEvent::Access(r) => sink.access(*r),
            TraceEvent::Sync(pids) => TraceSink::sync(&mut sink, pids),
            TraceEvent::Handoff { from, to } => TraceSink::handoff(&mut sink, *from, *to),
            TraceEvent::Steal { thief, victim } => TraceSink::steal(&mut sink, *thief, *victim),
        }
    }
    sink.flush_chunk();
    ReplayResult {
        sim: sink.sim.stats(),
        exec_cycles: sink.timing.finish_time(),
        fs_stall_frac: sink.timing.false_sharing_stall_fraction(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTERS: &str = "param NPROC = 4; shared int c[NPROC];
        fn main() { forall p in 0 .. NPROC { var i;
            for i in 0 .. 500 { c[p] = c[p] + 1; } } }";

    #[test]
    fn compiler_plan_removes_false_sharing() {
        let cfg = PipelineConfig::default();
        let base = run_pipeline(COUNTERS, &[], PlanSource::Unoptimized, &cfg).unwrap();
        let opt = run_pipeline(COUNTERS, &[], PlanSource::Compiler, &cfg).unwrap();
        assert!(
            base.sim.false_sharing() > 100,
            "unoptimized adjacent counters must false-share: {}",
            base.sim
        );
        assert_eq!(
            opt.sim.false_sharing(),
            0,
            "transposed counters must not false-share: {}",
            opt.sim
        );
        assert!(opt.exec_cycles < base.exec_cycles);
    }

    #[test]
    fn per_object_attribution_names_the_culprit() {
        let cfg = PipelineConfig::default();
        let base = run_pipeline(COUNTERS, &[], PlanSource::Unoptimized, &cfg).unwrap();
        let c = base.per_obj.get("c").expect("attributed");
        assert!(c.false_sharing() > 100);
    }

    #[test]
    fn nproc_override_applies() {
        let cfg = PipelineConfig::default();
        let r = run_pipeline(COUNTERS, &[("NPROC", 2)], PlanSource::Unoptimized, &cfg).unwrap();
        assert_eq!(r.nproc, 2);
    }

    #[test]
    fn explicit_plan_is_used() {
        let prog = fsr_lang::compile(COUNTERS).unwrap();
        let (c, _) = prog.object_by_name("c").unwrap();
        let mut plan = LayoutPlan::unoptimized(128);
        plan.insert(c, ObjPlan::PadElems, "test");
        let cfg = PipelineConfig::default();
        let r = run_pipeline(COUNTERS, &[], PlanSource::Explicit(plan), &cfg).unwrap();
        assert_eq!(r.sim.false_sharing(), 0);
    }

    #[test]
    fn block_size_sweep_shows_monotone_false_sharing() {
        let mut last = 0;
        for block in [16u32, 64, 256] {
            let cfg = PipelineConfig::with_block(block);
            let r = run_pipeline(COUNTERS, &[], PlanSource::Unoptimized, &cfg).unwrap();
            assert!(
                r.sim.false_sharing() >= last,
                "false sharing should not shrink with larger blocks"
            );
            last = r.sim.false_sharing();
        }
        assert!(last > 0);
    }

    #[test]
    fn lang_errors_propagate() {
        let cfg = PipelineConfig::default();
        let e = run_pipeline("fn main() {", &[], PlanSource::Unoptimized, &cfg).unwrap_err();
        assert!(matches!(e, PipelineError::Lang(_)));
    }

    #[test]
    fn oversized_process_counts_are_errors_not_panics() {
        // 100 processes exceeds the simulator's 64-way sharing vectors;
        // the pipeline must refuse with a diagnostic instead of tripping
        // an assert (or silently running as a uniprocessor).
        let cfg = PipelineConfig::default();
        let e =
            run_pipeline(COUNTERS, &[("NPROC", 100)], PlanSource::Unoptimized, &cfg).unwrap_err();
        assert!(matches!(
            e,
            PipelineError::Nproc(fsr_analysis::NprocError::OutOfRange(100))
        ));
    }

    #[test]
    fn runtime_errors_propagate() {
        let cfg = PipelineConfig::default();
        let e = run_pipeline(
            "shared int a[2]; fn main() { forall p in 0 .. 4 { a[p] = 1; } }",
            &[],
            PlanSource::Unoptimized,
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(e, PipelineError::Runtime(_)));
    }
}
