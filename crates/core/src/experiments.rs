//! The paper's experiments, reusable by the bench binaries and the
//! integration suite.
//!
//! - [`figure3`]: total miss rate split into false-sharing vs other
//!   misses, unoptimized vs compiler-transformed, per block size.
//! - [`table2`]: false-sharing reduction attributed per transformation
//!   (ablation: apply only one directive class at a time), averaged over
//!   block sizes.
//! - [`speedup_sweep`] / [`table3`]: execution-time scalability on the
//!   ring machine model, per program version.
//! - [`headline`]: the §5 aggregate claims (share of misses that are
//!   false sharing, fraction eliminated, change in other misses).

use crate::driver::{run_jobs, Job, PlanSourceSpec};
use crate::{
    plan_of, run_pipeline, PipelineConfig, PipelineError, PlanSource, RunResult,
};
use fsr_machine::SpeedupCurve;
use fsr_transform::ObjPlan;
use fsr_workloads::{Version, Workload};

/// Which program version to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vsn {
    N,
    C,
    P,
}

impl Vsn {
    pub fn label(self) -> &'static str {
        match self {
            Vsn::N => "unopt",
            Vsn::C => "compiler",
            Vsn::P => "programmer",
        }
    }
}

/// Plan source for a workload version.
pub fn plan_source(w: &Workload, v: Vsn) -> PlanSource {
    match v {
        Vsn::N => PlanSource::Unoptimized,
        Vsn::C => PlanSource::Compiler,
        Vsn::P => match w.programmer_plan {
            Some(f) => PlanSource::Programmer(f),
            None => PlanSource::Unoptimized,
        },
    }
}

fn plan_spec(w: &Workload, v: Vsn) -> PlanSourceSpec {
    match v {
        Vsn::N => PlanSourceSpec::Unoptimized,
        Vsn::C => PlanSourceSpec::Compiler,
        Vsn::P => match w.programmer_plan {
            Some(f) => PlanSourceSpec::Programmer(f),
            None => PlanSourceSpec::Unoptimized,
        },
    }
}

/// Run one workload version at a given processor count, scale and block.
pub fn run_workload(
    w: &Workload,
    v: Vsn,
    nproc: i64,
    scale: i64,
    block: u32,
) -> Result<RunResult, PipelineError> {
    let cfg = PipelineConfig::with_block(block);
    run_pipeline(
        w.source,
        &[("NPROC", nproc), ("SCALE", scale)],
        plan_source(w, v),
        &cfg,
    )
}

/// One Figure 3 bar: miss rates split into false-sharing and other.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Fig3Row {
    pub program: String,
    pub block: u32,
    pub version: String,
    pub refs: u64,
    pub fs_miss_rate: f64,
    pub other_miss_rate: f64,
}

/// Figure 3: the six N+C programs at the given block sizes (paper: 16
/// and 128 bytes, 12 processors).
pub fn figure3(nproc: i64, scale: i64, blocks: &[u32], threads: usize) -> Vec<Fig3Row> {
    let mut jobs = Vec::new();
    let set = fsr_workloads::figure3_set();
    for w in &set {
        for &b in blocks {
            for v in [Vsn::N, Vsn::C] {
                jobs.push(Job {
                    label: format!("{}/{}/{}", w.name, b, v.label()),
                    src: w.source.to_string(),
                    params: vec![("NPROC".into(), nproc), ("SCALE".into(), scale)],
                    plan: plan_spec(w, v),
                    cfg: PipelineConfig::with_block(b),
                });
            }
        }
    }
    run_jobs(jobs, threads)
        .into_iter()
        .filter_map(|(job, r)| {
            let r = r.ok()?;
            let parts: Vec<&str> = job.label.split('/').collect();
            Some(Fig3Row {
                program: parts[0].to_string(),
                block: parts[1].parse().unwrap(),
                version: parts[2].to_string(),
                refs: r.sim.refs,
                fs_miss_rate: r.sim.false_sharing() as f64 / r.sim.refs.max(1) as f64,
                other_miss_rate: r.sim.other_misses() as f64 / r.sim.refs.max(1) as f64,
            })
        })
        .collect()
}

/// Table 2 row: per-transformation attribution of the false-sharing
/// reduction, as "apply only this class" ablations.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table2Row {
    pub program: String,
    /// Total reduction with the full plan, percent of baseline FS misses.
    pub total_reduction_pct: f64,
    /// Reduction with only group&transpose directives, etc.
    pub transpose_pct: f64,
    pub indirection_pct: f64,
    pub pad_pct: f64,
    pub locks_pct: f64,
}

/// Table 2: averaged over the given block sizes (paper: 8–256 bytes).
pub fn table2(
    nproc: i64,
    scale: i64,
    blocks: &[u32],
    threads: usize,
) -> Result<Vec<Table2Row>, PipelineError> {
    let set = fsr_workloads::figure3_set();
    let mut rows = Vec::new();
    for w in &set {
        let mut acc = [0.0f64; 5]; // total, transpose, ind, pad, locks
        let mut samples = 0usize;
        for &b in blocks {
            let cfg = PipelineConfig::with_block(b);
            let prog = fsr_lang::compile_with_params(
                w.source,
                &[("NPROC", nproc), ("SCALE", scale)],
            )?;
            let full = plan_of(&prog, &PlanSource::Compiler, &cfg)?;
            let ablations: Vec<(usize, crate::LayoutPlan)> = vec![
                (1, full.retain_kind(|p| matches!(p, ObjPlan::Transpose { .. }))),
                (2, full.retain_kind(|p| matches!(p, ObjPlan::Indirect { .. }))),
                (3, full.retain_kind(|p| matches!(p, ObjPlan::PadElems))),
                (4, full.retain_kind(|p| matches!(p, ObjPlan::PadLock))),
            ];
            let mut jobs = vec![
                Job {
                    label: "base".into(),
                    src: w.source.to_string(),
                    params: vec![("NPROC".into(), nproc), ("SCALE".into(), scale)],
                    plan: PlanSourceSpec::Unoptimized,
                    cfg: cfg.clone(),
                },
                Job {
                    label: "full".into(),
                    src: w.source.to_string(),
                    params: vec![("NPROC".into(), nproc), ("SCALE".into(), scale)],
                    plan: PlanSourceSpec::Explicit(full.clone()),
                    cfg: cfg.clone(),
                },
            ];
            for (k, plan) in &ablations {
                jobs.push(Job {
                    label: format!("abl{k}"),
                    src: w.source.to_string(),
                    params: vec![("NPROC".into(), nproc), ("SCALE".into(), scale)],
                    plan: PlanSourceSpec::Explicit(plan.clone()),
                    cfg: cfg.clone(),
                });
            }
            let out = run_jobs(jobs, threads);
            let fs_of = |label: &str| -> Option<u64> {
                out.iter()
                    .find(|(j, _)| j.label == label)
                    .and_then(|(_, r)| r.as_ref().ok().map(|r| r.sim.false_sharing()))
            };
            let base = fs_of("base").unwrap_or(0);
            if base == 0 {
                continue;
            }
            let reduction = |fs: u64| 100.0 * (base.saturating_sub(fs)) as f64 / base as f64;
            if let Some(f) = fs_of("full") {
                acc[0] += reduction(f);
            }
            for k in 1..=4 {
                if let Some(f) = fs_of(&format!("abl{k}")) {
                    acc[k] += reduction(f);
                }
            }
            samples += 1;
        }
        let n = samples.max(1) as f64;
        rows.push(Table2Row {
            program: w.name.to_string(),
            total_reduction_pct: acc[0] / n,
            transpose_pct: acc[1] / n,
            indirection_pct: acc[2] / n,
            pad_pct: acc[3] / n,
            locks_pct: acc[4] / n,
        });
    }
    Ok(rows)
}

/// Speedup sweep for one program version over processor counts.
/// Returns the curve plus the uniprocessor time of the *unoptimized*
/// version (the paper's speedup baseline).
pub fn speedup_sweep(
    w: &Workload,
    v: Vsn,
    procs: &[u32],
    scale: i64,
    block: u32,
    threads: usize,
) -> SpeedupCurve {
    let jobs: Vec<Job> = procs
        .iter()
        .map(|&p| Job {
            label: format!("{p}"),
            src: w.source.to_string(),
            params: vec![("NPROC".into(), p as i64), ("SCALE".into(), scale)],
            plan: plan_spec(w, v),
            cfg: PipelineConfig::with_block(block),
        })
        .collect();
    let mut curve = SpeedupCurve::default();
    for (job, r) in run_jobs(jobs, threads) {
        if let Ok(r) = r {
            curve.push(job.label.parse().unwrap(), r.exec_cycles);
        }
    }
    curve
}

/// The uniprocessor execution time of the unoptimized version — the
/// baseline every speedup in Figure 4 / Table 3 is relative to.
pub fn t1_unoptimized(w: &Workload, scale: i64, block: u32) -> Result<u64, PipelineError> {
    Ok(run_workload(w, Vsn::N, 1, scale, block)?.exec_cycles)
}

/// One Table 3 row.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table3Row {
    pub program: String,
    /// (max speedup, at #procs) per version; None when the version does
    /// not exist for this program (Table 1).
    pub original: Option<(f64, u32)>,
    pub compiler: (f64, u32),
    pub programmer: Option<(f64, u32)>,
}

/// Table 3 for all ten programs.
pub fn table3(procs: &[u32], scale: i64, block: u32, threads: usize) -> Vec<Table3Row> {
    fsr_workloads::all()
        .iter()
        .map(|w| {
            let t1 = t1_unoptimized(w, scale, block).unwrap_or(1);
            let sweep = |v: Vsn| speedup_sweep(w, v, procs, scale, block, threads).max_speedup(t1);
            Table3Row {
                program: w.name.to_string(),
                original: w.has(Version::Unoptimized).then(|| sweep(Vsn::N)),
                compiler: sweep(Vsn::C),
                programmer: w.has(Version::Programmer).then(|| sweep(Vsn::P)),
            }
        })
        .collect()
}

/// §5 headline aggregate at one block size: fraction of all misses that
/// are false sharing (unoptimized), fraction of those eliminated, and
/// relative change in other misses.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Headline {
    pub block: u32,
    pub fs_share_of_misses: f64,
    pub fs_eliminated: f64,
    pub other_miss_change: f64,
    pub total_miss_change: f64,
}

pub fn headline(nproc: i64, scale: i64, block: u32, threads: usize) -> Headline {
    let rows = figure3(nproc, scale, &[block], threads);
    let mut base_fs = 0.0;
    let mut base_other = 0.0;
    let mut opt_fs = 0.0;
    let mut opt_other = 0.0;
    for r in &rows {
        // Weight rates by references so the aggregate matches pooled
        // miss counts.
        let w = r.refs as f64;
        if r.version == "unopt" {
            base_fs += r.fs_miss_rate * w;
            base_other += r.other_miss_rate * w;
        } else {
            opt_fs += r.fs_miss_rate * w;
            opt_other += r.other_miss_rate * w;
        }
    }
    Headline {
        block,
        fs_share_of_misses: base_fs / (base_fs + base_other).max(1e-12),
        fs_eliminated: 1.0 - opt_fs / base_fs.max(1e-12),
        other_miss_change: opt_other / base_other.max(1e-12) - 1.0,
        total_miss_change: (opt_fs + opt_other) / (base_fs + base_other).max(1e-12) - 1.0,
    }
}
