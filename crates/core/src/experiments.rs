//! The paper's experiments, reusable by the bench binaries and the
//! integration suite.
//!
//! - [`figure3`]: total miss rate split into false-sharing vs other
//!   misses, unoptimized vs compiler-transformed, per block size.
//! - [`table2`]: false-sharing reduction attributed per transformation
//!   (ablation: apply only one directive class at a time), averaged over
//!   block sizes.
//! - [`speedup_sweep`] / [`table3`]: execution-time scalability on the
//!   ring machine model, per program version.
//! - [`headline`]: the §5 aggregate claims (share of misses that are
//!   false sharing, fraction eliminated, change in other misses).
//!
//! All generators enqueue their full grid as one [`run_batch`] call, so
//! front ends are compiled once per (program, params) and configurations
//! with address-identical layouts — e.g. the unoptimized baseline across
//! every block size — share a single interpretation (the paper's own
//! trace-once, simulate-many methodology).

use crate::driver::{run_batch, Job, PlanSourceSpec};
use crate::{
    run_pipeline, InterconnectKind, MissKind, ObjCoherence, PipelineConfig, PipelineError,
    PlanSource, ProtocolKind, RunResult, SimEngine, SimStats,
};
use fsr_machine::SpeedupCurve;
use fsr_transform::ObjPlan;
use fsr_workloads::{Version, Workload};
use std::collections::HashMap;
use std::sync::Arc;

/// Which program version to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vsn {
    N,
    C,
    P,
}

impl Vsn {
    pub fn label(self) -> &'static str {
        match self {
            Vsn::N => "unopt",
            Vsn::C => "compiler",
            Vsn::P => "programmer",
        }
    }
}

/// The simulator/timing backend an experiment grid runs against — the
/// protocol/interconnect axis every generator now carries (previously
/// `figure3`/`table2` were hard-wired to MSI + KSR2 ring).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Backend {
    pub protocol: ProtocolKind,
    pub interconnect: InterconnectKind,
}

impl Default for Backend {
    /// The paper's substrate: MSI over the KSR2 ring hierarchy.
    fn default() -> Self {
        Backend::new(ProtocolKind::Msi, InterconnectKind::Ksr2Ring)
    }
}

impl Backend {
    pub const fn new(protocol: ProtocolKind, interconnect: InterconnectKind) -> Backend {
        Backend {
            protocol,
            interconnect,
        }
    }

    /// The three coherence substrates the directory ablation compares:
    /// the paper's MSI + ring, MESI + ring, and the home-node directory
    /// protocol over its per-node fabric.
    pub const ABLATION: [Backend; 3] = [
        Backend::new(ProtocolKind::Msi, InterconnectKind::Ksr2Ring),
        Backend::new(ProtocolKind::Mesi, InterconnectKind::Ksr2Ring),
        Backend::new(ProtocolKind::Directory, InterconnectKind::HomeDir),
    ];

    /// Pipeline configuration for this backend at one block size.
    pub fn config(&self, block: u32) -> PipelineConfig {
        PipelineConfig::with_block(block).with_backends(self.protocol, self.interconnect)
    }
}

/// Plan source for a workload version.
pub fn plan_source(w: &Workload, v: Vsn) -> PlanSource {
    match v {
        Vsn::N => PlanSource::Unoptimized,
        Vsn::C => PlanSource::Compiler,
        Vsn::P => match w.programmer_plan {
            Some(f) => PlanSource::Programmer(f),
            None => PlanSource::Unoptimized,
        },
    }
}

/// Driver-level plan spec for a workload version.
pub fn plan_spec(w: &Workload, v: Vsn) -> PlanSourceSpec {
    match v {
        Vsn::N => PlanSourceSpec::Unoptimized,
        Vsn::C => PlanSourceSpec::Compiler,
        Vsn::P => match w.programmer_plan {
            Some(f) => PlanSourceSpec::Programmer(f),
            None => PlanSourceSpec::Unoptimized,
        },
    }
}

fn std_params(nproc: i64, scale: i64) -> Vec<(String, i64)> {
    vec![("NPROC".to_string(), nproc), ("SCALE".to_string(), scale)]
}

/// Run one workload version at a given processor count, scale and block.
pub fn run_workload(
    w: &Workload,
    v: Vsn,
    nproc: i64,
    scale: i64,
    block: u32,
) -> Result<RunResult, PipelineError> {
    let cfg = PipelineConfig::with_block(block);
    run_pipeline(
        w.source,
        &[("NPROC", nproc), ("SCALE", scale)],
        plan_source(w, v),
        &cfg,
    )
}

/// One Figure 3 bar: miss rates split into false-sharing and other.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Fig3Row {
    pub program: String,
    pub block: u32,
    pub version: String,
    /// Coherence protocol the row was simulated under.
    pub protocol: String,
    /// Interconnect the row was timed against.
    pub interconnect: String,
    pub refs: u64,
    pub fs_miss_rate: f64,
    pub other_miss_rate: f64,
}

#[derive(Debug, Clone, Copy)]
struct Fig3Meta {
    program: &'static str,
    block: u32,
    version: Vsn,
}

/// Figure 3: the six N+C programs at the given block sizes (paper: 16
/// and 128 bytes, 12 processors), on the paper's MSI + ring substrate.
pub fn figure3(nproc: i64, scale: i64, blocks: &[u32], threads: usize) -> Vec<Fig3Row> {
    figure3_on(Backend::default(), nproc, scale, blocks, threads)
}

/// [`figure3`] on an explicit backend.
pub fn figure3_on(
    backend: Backend,
    nproc: i64,
    scale: i64,
    blocks: &[u32],
    threads: usize,
) -> Vec<Fig3Row> {
    let set = fsr_workloads::figure3_set();
    let mut jobs = Vec::new();
    for w in &set {
        let src: Arc<str> = Arc::from(w.source);
        for &b in blocks {
            for v in [Vsn::N, Vsn::C] {
                jobs.push(Job {
                    meta: Fig3Meta {
                        program: w.name,
                        block: b,
                        version: v,
                    },
                    src: src.clone(),
                    params: std_params(nproc, scale),
                    plan: plan_spec(w, v),
                    cfg: backend.config(b),
                });
            }
        }
    }
    run_batch(jobs, threads)
        .into_iter()
        .filter_map(|(job, r)| {
            let r = r.ok()?;
            Some(Fig3Row {
                program: job.meta.program.to_string(),
                block: job.meta.block,
                version: job.meta.version.label().to_string(),
                protocol: backend.protocol.name().to_string(),
                interconnect: backend.interconnect.name().to_string(),
                refs: r.sim.refs,
                fs_miss_rate: r.sim.false_sharing() as f64 / r.sim.refs.max(1) as f64,
                other_miss_rate: r.sim.other_misses() as f64 / r.sim.refs.max(1) as f64,
            })
        })
        .collect()
}

/// Table 2 row: per-transformation attribution of the false-sharing
/// reduction, as "apply only this class" ablations.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table2Row {
    pub program: String,
    /// Coherence protocol the ablation was simulated under.
    pub protocol: String,
    /// Interconnect the ablation was timed against.
    pub interconnect: String,
    /// Total reduction with the full plan, percent of baseline FS misses.
    pub total_reduction_pct: f64,
    /// Reduction with only group&transpose directives, etc.
    pub transpose_pct: f64,
    pub indirection_pct: f64,
    pub pad_pct: f64,
    pub locks_pct: f64,
    /// Block sizes excluded from the average because the unoptimized
    /// baseline had zero false-sharing misses there (a 0% denominator).
    pub dropped_blocks: usize,
}

#[derive(Debug, Clone, Copy)]
struct T2Meta {
    prog_idx: usize,
    block: u32,
    /// 0 = unoptimized baseline, 1 = full plan, 2..=5 = per-class
    /// ablations (transpose, indirection, pad, locks).
    cell: usize,
}

/// Table 2: averaged over the given block sizes (paper: 8–256 bytes).
///
/// All (program, block, cell) samples run as one batch; baselines whose
/// layout does not depend on the block size collapse into a single
/// interpretation.
pub fn table2(
    nproc: i64,
    scale: i64,
    blocks: &[u32],
    threads: usize,
) -> Result<Vec<Table2Row>, PipelineError> {
    table2_on(Backend::default(), nproc, scale, blocks, threads)
}

/// [`table2`] on an explicit backend.
pub fn table2_on(
    backend: Backend,
    nproc: i64,
    scale: i64,
    blocks: &[u32],
    threads: usize,
) -> Result<Vec<Table2Row>, PipelineError> {
    let set = fsr_workloads::figure3_set();
    let mut jobs: Vec<Job<T2Meta>> = Vec::new();
    for (wi, w) in set.iter().enumerate() {
        let src: Arc<str> = Arc::from(w.source);
        let prog = fsr_lang::compile_with_params(w.source, &[("NPROC", nproc), ("SCALE", scale)])?;
        let analysis = fsr_analysis::analyze(&prog)?;
        for &b in blocks {
            let cfg = backend.config(b);
            let full = fsr_transform::plan_for(&prog, &analysis, &cfg.plan_cfg);
            let cells = [
                PlanSourceSpec::Unoptimized,
                PlanSourceSpec::Explicit(full.clone()),
                PlanSourceSpec::Explicit(
                    full.retain_kind(|p| matches!(p, ObjPlan::Transpose { .. })),
                ),
                PlanSourceSpec::Explicit(
                    full.retain_kind(|p| matches!(p, ObjPlan::Indirect { .. })),
                ),
                PlanSourceSpec::Explicit(full.retain_kind(|p| matches!(p, ObjPlan::PadElems))),
                PlanSourceSpec::Explicit(full.retain_kind(|p| matches!(p, ObjPlan::PadLock))),
            ];
            for (cell, plan) in cells.into_iter().enumerate() {
                jobs.push(Job {
                    meta: T2Meta {
                        prog_idx: wi,
                        block: b,
                        cell,
                    },
                    src: src.clone(),
                    params: std_params(nproc, scale),
                    plan,
                    cfg: cfg.clone(),
                });
            }
        }
    }

    let mut fs: HashMap<(usize, u32, usize), u64> = HashMap::new();
    for (job, r) in run_batch(jobs, threads) {
        if let Ok(r) = r {
            fs.insert(
                (job.meta.prog_idx, job.meta.block, job.meta.cell),
                r.sim.false_sharing(),
            );
        }
    }

    let mut rows = Vec::new();
    for (wi, w) in set.iter().enumerate() {
        let mut acc = [0.0f64; 5]; // total, transpose, ind, pad, locks
        let mut samples = 0usize;
        let mut dropped = 0usize;
        for &b in blocks {
            let base = fs.get(&(wi, b, 0)).copied().unwrap_or(0);
            if base == 0 {
                dropped += 1;
                eprintln!(
                    "table2: dropping {} @ {b}B from the average \
                     (baseline has no false-sharing misses)",
                    w.name
                );
                continue;
            }
            let reduction = |v: u64| 100.0 * base.saturating_sub(v) as f64 / base as f64;
            for (k, a) in acc.iter_mut().enumerate() {
                if let Some(&v) = fs.get(&(wi, b, k + 1)) {
                    *a += reduction(v);
                }
            }
            samples += 1;
        }
        let n = samples.max(1) as f64;
        rows.push(Table2Row {
            program: w.name.to_string(),
            protocol: backend.protocol.name().to_string(),
            interconnect: backend.interconnect.name().to_string(),
            total_reduction_pct: acc[0] / n,
            transpose_pct: acc[1] / n,
            indirection_pct: acc[2] / n,
            pad_pct: acc[3] / n,
            locks_pct: acc[4] / n,
            dropped_blocks: dropped,
        });
    }
    Ok(rows)
}

/// Speedup sweep for one program version over processor counts.
/// Returns the curve plus the uniprocessor time of the *unoptimized*
/// version (the paper's speedup baseline).
pub fn speedup_sweep(
    w: &Workload,
    v: Vsn,
    procs: &[u32],
    scale: i64,
    block: u32,
    threads: usize,
) -> SpeedupCurve {
    speedup_sweep_on(Backend::default(), w, v, procs, scale, block, threads)
}

/// [`speedup_sweep`] on an explicit backend.
pub fn speedup_sweep_on(
    backend: Backend,
    w: &Workload,
    v: Vsn,
    procs: &[u32],
    scale: i64,
    block: u32,
    threads: usize,
) -> SpeedupCurve {
    let src: Arc<str> = Arc::from(w.source);
    let jobs: Vec<Job<u32>> = procs
        .iter()
        .map(|&p| Job {
            meta: p,
            src: src.clone(),
            params: std_params(p as i64, scale),
            plan: plan_spec(w, v),
            cfg: backend.config(block),
        })
        .collect();
    let mut curve = SpeedupCurve::default();
    for (job, r) in run_batch(jobs, threads) {
        if let Ok(r) = r {
            curve.push(job.meta, r.exec_cycles);
        }
    }
    curve
}

/// The uniprocessor execution time of the unoptimized version — the
/// baseline every speedup in Figure 4 / Table 3 is relative to.
pub fn t1_unoptimized(w: &Workload, scale: i64, block: u32) -> Result<u64, PipelineError> {
    Ok(run_workload(w, Vsn::N, 1, scale, block)?.exec_cycles)
}

/// One Table 3 row.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table3Row {
    pub program: String,
    /// (max speedup, at #procs) per version; None when the version does
    /// not exist for this program (Table 1).
    pub original: Option<(f64, u32)>,
    pub compiler: (f64, u32),
    pub programmer: Option<(f64, u32)>,
}

#[derive(Debug, Clone, Copy)]
struct T3Meta {
    prog_idx: usize,
    version: Vsn,
    procs: u32,
    /// The unoptimized uniprocessor baseline time job.
    baseline: bool,
}

/// Table 3 for all ten programs, as one batch over every (program,
/// version, #procs) point plus the per-program baselines.
pub fn table3(procs: &[u32], scale: i64, block: u32, threads: usize) -> Vec<Table3Row> {
    table3_on(Backend::default(), procs, scale, block, threads)
}

/// [`table3`] on an explicit backend.
pub fn table3_on(
    backend: Backend,
    procs: &[u32],
    scale: i64,
    block: u32,
    threads: usize,
) -> Vec<Table3Row> {
    let all = fsr_workloads::all();
    let mut jobs: Vec<Job<T3Meta>> = Vec::new();
    for (wi, w) in all.iter().enumerate() {
        let src: Arc<str> = Arc::from(w.source);
        jobs.push(Job {
            meta: T3Meta {
                prog_idx: wi,
                version: Vsn::N,
                procs: 1,
                baseline: true,
            },
            src: src.clone(),
            params: std_params(1, scale),
            plan: plan_spec(w, Vsn::N),
            cfg: backend.config(block),
        });
        let mut versions = vec![Vsn::C];
        if w.has(Version::Unoptimized) {
            versions.push(Vsn::N);
        }
        if w.has(Version::Programmer) {
            versions.push(Vsn::P);
        }
        for v in versions {
            for &p in procs {
                jobs.push(Job {
                    meta: T3Meta {
                        prog_idx: wi,
                        version: v,
                        procs: p,
                        baseline: false,
                    },
                    src: src.clone(),
                    params: std_params(p as i64, scale),
                    plan: plan_spec(w, v),
                    cfg: backend.config(block),
                });
            }
        }
    }

    let mut t1: Vec<u64> = vec![1; all.len()];
    let mut curves: HashMap<(usize, Vsn), SpeedupCurve> = HashMap::new();
    for (job, r) in run_batch(jobs, threads) {
        let Ok(r) = r else { continue };
        if job.meta.baseline {
            t1[job.meta.prog_idx] = r.exec_cycles;
        } else {
            curves
                .entry((job.meta.prog_idx, job.meta.version))
                .or_default()
                .push(job.meta.procs, r.exec_cycles);
        }
    }

    all.iter()
        .enumerate()
        .map(|(wi, w)| {
            let ms = |v: Vsn| {
                curves
                    .get(&(wi, v))
                    .map(|c| c.max_speedup(t1[wi]))
                    .unwrap_or_else(|| SpeedupCurve::default().max_speedup(t1[wi]))
            };
            Table3Row {
                program: w.name.to_string(),
                original: w.has(Version::Unoptimized).then(|| ms(Vsn::N)),
                compiler: ms(Vsn::C),
                programmer: w.has(Version::Programmer).then(|| ms(Vsn::P)),
            }
        })
        .collect()
}

/// §5 headline aggregate at one block size: fraction of all misses that
/// are false sharing (unoptimized), fraction of those eliminated, and
/// relative change in other misses.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Headline {
    pub block: u32,
    pub fs_share_of_misses: f64,
    pub fs_eliminated: f64,
    pub other_miss_change: f64,
    pub total_miss_change: f64,
}

/// Pool already-computed [`figure3`] rows at one block size into the
/// headline aggregate. Lets callers that also render Figure 3 derive the
/// headline without re-running any simulation.
pub fn headline_from_rows(rows: &[Fig3Row], block: u32) -> Headline {
    let mut base_fs = 0.0;
    let mut base_other = 0.0;
    let mut opt_fs = 0.0;
    let mut opt_other = 0.0;
    for r in rows.iter().filter(|r| r.block == block) {
        // Weight rates by references so the aggregate matches pooled
        // miss counts.
        let w = r.refs as f64;
        if r.version == "unopt" {
            base_fs += r.fs_miss_rate * w;
            base_other += r.other_miss_rate * w;
        } else {
            opt_fs += r.fs_miss_rate * w;
            opt_other += r.other_miss_rate * w;
        }
    }
    Headline {
        block,
        fs_share_of_misses: base_fs / (base_fs + base_other).max(1e-12),
        fs_eliminated: 1.0 - opt_fs / base_fs.max(1e-12),
        other_miss_change: opt_other / base_other.max(1e-12) - 1.0,
        total_miss_change: (opt_fs + opt_other) / (base_fs + base_other).max(1e-12) - 1.0,
    }
}

pub fn headline(nproc: i64, scale: i64, block: u32, threads: usize) -> Headline {
    headline_from_rows(&figure3(nproc, scale, &[block], threads), block)
}

/// One cell of the backend matrix: a (program, version, protocol,
/// interconnect) run with its coherence-event observability.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct MatrixCell {
    pub program: String,
    pub version: String,
    pub protocol: String,
    pub interconnect: String,
    pub block: u32,
    pub nproc: u32,
    pub sim: SimStats,
    pub exec_cycles: u64,
    /// Total interconnect queueing stall cycles.
    pub queue_stall: u64,
    /// Per-object coherence events + queue stalls, via the layout map.
    pub per_obj: Vec<(String, ObjCoherence)>,
}

#[derive(Debug, Clone, Copy)]
struct MxMeta {
    prog_idx: usize,
    version: Vsn,
    protocol: ProtocolKind,
    ic: InterconnectKind,
}

/// Cross-backend sweep: every workload × version × coherence protocol ×
/// interconnect, one cell each, as a single [`run_batch`] call.
///
/// The batch groups by (front end, run config, layout fingerprint) —
/// protocol and interconnect are simulator/timing state, not trace
/// state — so all backend variants of one program version share a
/// single interpretation, exactly like a block-size sweep does.
pub fn protocol_matrix(
    programs: &[&str],
    versions: &[Vsn],
    nproc: i64,
    scale: i64,
    block: u32,
    threads: usize,
) -> Vec<MatrixCell> {
    protocol_matrix_cells(
        programs,
        versions,
        nproc,
        scale,
        block,
        threads,
        SimEngine::default(),
        &ProtocolKind::ALL,
        &InterconnectKind::ALL,
    )
}

/// [`protocol_matrix`] generalized over the simulator engine and an
/// explicit (protocol, interconnect) subset — the unit the matrix bench
/// times per backend pair, and the sweep `bench_simd` replays per
/// engine to prove the engines bit-identical at scale.
#[allow(clippy::too_many_arguments)]
pub fn protocol_matrix_cells(
    programs: &[&str],
    versions: &[Vsn],
    nproc: i64,
    scale: i64,
    block: u32,
    threads: usize,
    engine: SimEngine,
    protocols: &[ProtocolKind],
    interconnects: &[InterconnectKind],
) -> Vec<MatrixCell> {
    let set: Vec<_> = programs
        .iter()
        .filter_map(|n| fsr_workloads::by_name(n))
        .collect();
    let mut jobs: Vec<Job<MxMeta>> = Vec::new();
    for (wi, w) in set.iter().enumerate() {
        let src: Arc<str> = Arc::from(w.source);
        for &v in versions {
            for &protocol in protocols {
                for &ic in interconnects {
                    jobs.push(Job {
                        meta: MxMeta {
                            prog_idx: wi,
                            version: v,
                            protocol,
                            ic,
                        },
                        src: src.clone(),
                        params: std_params(nproc, scale),
                        plan: plan_spec(w, v),
                        cfg: PipelineConfig::with_block(block)
                            .with_backends(protocol, ic)
                            .with_engine(engine),
                    });
                }
            }
        }
    }
    run_batch(jobs, threads)
        .into_iter()
        .filter_map(|(job, r)| {
            let r = r.ok()?;
            Some(MatrixCell {
                program: set[job.meta.prog_idx].name.to_string(),
                version: job.meta.version.label().to_string(),
                protocol: job.meta.protocol.name().to_string(),
                interconnect: job.meta.ic.name().to_string(),
                block,
                nproc: r.nproc,
                queue_stall: r.timing.total_queue(),
                exec_cycles: r.exec_cycles,
                sim: r.sim,
                per_obj: r.per_obj_coherence.into_iter().collect(),
            })
        })
        .collect()
}

/// One cell of the directory ablation: a (program, version, backend)
/// run reduced to the miss taxonomy and the cost counters that differ
/// across coherence substrates.
#[derive(Debug, Clone, serde::Serialize)]
pub struct AblationRow {
    pub program: String,
    pub version: String,
    pub protocol: String,
    pub interconnect: String,
    pub block: u32,
    pub nproc: u32,
    /// Miss counts by kind (cold, replacement, true-, false-sharing) —
    /// identical across the backends by the protocol-invariance
    /// property; committed so the golden diff proves it.
    pub misses: [u64; MissKind::COUNT],
    pub upgrades: u64,
    pub invalidations: u64,
    /// Home-directory transactions (0 under the snooping backends).
    pub dir_txns: u64,
    pub exec_cycles: u64,
    /// Stall cycles attributed to false-sharing misses — the per-
    /// workload false-sharing *cost*, which does shift per backend.
    pub fs_stall: u64,
    /// Total interconnect queueing stall.
    pub queue_stall: u64,
    /// 2-hop / 3-hop directory transaction split (0 under snooping).
    pub two_hop: u64,
    pub three_hop: u64,
    /// Occupancy cycles of the busiest channel (hottest home node under
    /// the directory fabric, busiest ring under the KSR2).
    pub max_channel_busy: u64,
}

#[derive(Debug, Clone, Copy)]
struct AblMeta {
    prog_idx: usize,
    version: Vsn,
    backend: Backend,
}

/// The directory ablation: every listed workload × {unopt, compiler} ×
/// [`Backend::ABLATION`], one [`run_batch`] call. The unopt-vs-compiler
/// pair shows how much of each backend's cost the paper's
/// transformations recover; the backend axis shows how the *same*
/// misses are charged by broadcast vs directory substrates.
pub fn directory_ablation(
    programs: &[&str],
    nproc: i64,
    scale: i64,
    block: u32,
    threads: usize,
) -> Vec<AblationRow> {
    let set: Vec<_> = programs
        .iter()
        .filter_map(|n| fsr_workloads::by_name(n))
        .collect();
    let mut jobs: Vec<Job<AblMeta>> = Vec::new();
    for (wi, w) in set.iter().enumerate() {
        let src: Arc<str> = Arc::from(w.source);
        for v in [Vsn::N, Vsn::C] {
            for backend in Backend::ABLATION {
                jobs.push(Job {
                    meta: AblMeta {
                        prog_idx: wi,
                        version: v,
                        backend,
                    },
                    src: src.clone(),
                    params: std_params(nproc, scale),
                    plan: plan_spec(w, v),
                    cfg: backend.config(block),
                });
            }
        }
    }
    run_batch(jobs, threads)
        .into_iter()
        .filter_map(|(job, r)| {
            let r = r.ok()?;
            Some(AblationRow {
                program: set[job.meta.prog_idx].name.to_string(),
                version: job.meta.version.label().to_string(),
                protocol: job.meta.backend.protocol.name().to_string(),
                interconnect: job.meta.backend.interconnect.name().to_string(),
                block,
                nproc: r.nproc,
                misses: r.sim.misses,
                upgrades: r.sim.upgrades,
                invalidations: r.sim.invalidations,
                dir_txns: r.sim.dir_txns,
                exec_cycles: r.exec_cycles,
                fs_stall: r.timing.stall_by_kind[MissKind::FalseSharing as usize],
                queue_stall: r.timing.total_queue(),
                two_hop: r.timing.two_hop,
                three_hop: r.timing.three_hop,
                max_channel_busy: r.timing.max_channel_busy(),
            })
        })
        .collect()
}
